"""Tests for the columnar query engine.

The contract under test is *byte-identical equivalence*: for any
collection and any (α, window, top_k), ``ColumnarQueryEngine`` must
return exactly the ranking of the object path (same scores bit for bit,
same support counts, same tie-breaks) — in both its exhaustive and its
block-max pruned evaluation modes. Equivalence is asserted with ``==``
on the ``ExpertScore`` lists, which compares the float scores exactly,
not approximately.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.index import columnar as columnar_module
from repro.index.blockmax import PruningStats
from repro.index.columnar import ColumnarQueryEngine
from repro.socialgraph.graph import SocialGraph
from repro.socialgraph.metamodel import Platform, RelationKind, Resource, UserProfile

ALPHAS = (0.0, 0.6, 1.0)
WINDOWS = (None, 1, 10, 0.5, 1.0)

_VOCAB = (
    "swimming freestyle pool race training guitar rock chords song stage "
    "pasta recipe kitchen sauce pizza tennis serve match espresso milan "
    "python compiler index query engine medal water band tour olympic"
).split()


def both_engines(finder, need, **kwargs):
    """Rank *need* on all three engines, assert exact equality, return
    it. "columnar-pruned" rides along on every equivalence assertion in
    this module — absolute windows exercise the block-max path, every
    other window shape its exhaustive fallback."""
    finder.engine = "object"
    reference = finder.find_experts(need, **kwargs)
    finder.engine = "columnar"
    result = finder.find_experts(need, **kwargs)
    assert result == reference
    finder.engine = "columnar-pruned"
    pruned = finder.find_experts(need, **kwargs)
    assert pruned == reference
    return result


def build_random_finder(analyzer, seed, *, config=None):
    """A finder over a small seeded-random collection: random texts,
    random multi-supporter evidence at random distances (streamed via
    ``observe``, which accepts arbitrary distance structure)."""
    rng = random.Random(seed)
    candidates = [f"cand{i}" for i in range(rng.randint(3, 6))]
    g = SocialGraph(Platform.TWITTER)
    for cid in candidates:
        g.add_profile(
            UserProfile(profile_id=cid, platform=Platform.TWITTER, display_name=cid)
        )
    g.add_resource(
        Resource(resource_id="seed", platform=Platform.TWITTER,
                 text=" ".join(rng.choices(_VOCAB, k=8)), language="en")
    )
    g.link_resource(candidates[0], "seed", RelationKind.CREATES)
    finder = ExpertFinder.build(
        g, candidates, analyzer, config or FinderConfig(window=None)
    )
    for i in range(rng.randint(20, 40)):
        supporters = [
            (cid, rng.randint(0, finder.config.max_distance))
            for cid in rng.sample(candidates, k=rng.randint(1, 3))
        ]
        finder.observe(
            f"r{i}",
            " ".join(rng.choices(_VOCAB, k=rng.randint(3, 12))),
            supporters,
            language="en",
        )
    return finder, rng


@pytest.fixture(scope="module")
def tiny_finder(tiny_dataset):
    """A private finder over the TINY dataset (queries carry entities)."""
    return ExpertFinder.build(
        tiny_dataset.graph_for(None),
        tiny_dataset.candidates_for(None),
        tiny_dataset.analyzer,
        FinderConfig(),
        corpus=tiny_dataset.corpus,
    )


class TestEquivalenceTiny:
    """Exact equality on the TINY dataset (real entity annotations)."""

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_alpha_sweep(self, tiny_finder, tiny_dataset, alpha):
        for need in tiny_dataset.queries[:8]:
            both_engines(tiny_finder, need.text, alpha=alpha)

    @pytest.mark.parametrize("window", WINDOWS)
    def test_window_sweep(self, tiny_finder, tiny_dataset, window):
        for need in tiny_dataset.queries[:8]:
            both_engines(tiny_finder, need.text, window=window)

    def test_configured_defaults(self, tiny_finder, tiny_dataset):
        for need in tiny_dataset.queries:
            both_engines(tiny_finder, need.text)

    def test_top_k_prefixes(self, tiny_finder, tiny_dataset):
        need = tiny_dataset.queries[0].text
        full = both_engines(tiny_finder, need)
        for k in (0, 1, 3, len(full), len(full) + 5):
            assert both_engines(tiny_finder, need, top_k=k) == full[:k]


class TestEquivalenceRandomized:
    @pytest.mark.parametrize("seed", (0, 1, 2, 3))
    def test_random_collections(self, analyzer, seed):
        finder, rng = build_random_finder(analyzer, seed)
        for _ in range(12):
            need = " ".join(rng.choices(_VOCAB, k=rng.randint(1, 4)))
            both_engines(
                finder,
                need,
                alpha=rng.choice(ALPHAS),
                window=rng.choice(WINDOWS),
            )

    def test_normalized_config(self, analyzer):
        finder, rng = build_random_finder(
            analyzer, 11, config=FinderConfig(window=None, normalize=True)
        )
        for _ in range(6):
            both_engines(finder, " ".join(rng.choices(_VOCAB, k=3)))

    def test_score_ties_break_identically(self, analyzer):
        # two candidates supported by the same resources at the same
        # distances have bit-identical scores; the order must fall back
        # to candidate id on both paths
        g = SocialGraph(Platform.TWITTER)
        for cid in ("zoe", "abe"):
            g.add_profile(
                UserProfile(profile_id=cid, platform=Platform.TWITTER, display_name=cid)
            )
        g.add_resource(
            Resource(resource_id="t1", platform=Platform.TWITTER,
                     text="freestyle swimming training", language="en")
        )
        g.link_resource("zoe", "t1", RelationKind.CREATES)
        finder = ExpertFinder.build(g, ("zoe", "abe"), analyzer, FinderConfig(window=None))
        finder.observe("t2", "freestyle swimming race", [("zoe", 1), ("abe", 1)],
                       language="en")
        finder.observe("t3", "freestyle swimming medal", [("abe", 1), ("zoe", 1)],
                       language="en")
        ranked = both_engines(finder, "freestyle swimming")
        tied = [e.candidate_id for e in ranked if e.score == ranked[0].score]
        assert tied == sorted(tied)


class TestEngineBehavior:
    def test_compile_introspection(self, tiny_finder):
        engine = tiny_finder.query_engine()
        assert engine.document_count == tiny_finder.indexed_resources
        assert engine.candidate_count > 0

    def test_scratch_reuse_is_clean(self, tiny_finder, tiny_dataset):
        # repeated + interleaved queries on one engine instance must not
        # leak accumulator state between calls
        needs = [n.text for n in tiny_dataset.queries[:4]]
        tiny_finder.engine = "columnar"
        first = [tiny_finder.find_experts(n) for n in needs]
        again = [tiny_finder.find_experts(n) for n in reversed(needs)]
        assert again == list(reversed(first))

    def test_validation_parity(self, tiny_finder, tiny_dataset):
        need = tiny_dataset.queries[0].text
        for engine in ("object", "columnar", "columnar-pruned"):
            tiny_finder.engine = engine
            with pytest.raises(ValueError):
                tiny_finder.find_experts(need, alpha=1.5)
            with pytest.raises(ValueError):
                tiny_finder.find_experts(need, alpha=-0.1)
            with pytest.raises(ValueError):
                tiny_finder.find_experts(need, window=0)
            with pytest.raises(ValueError):
                tiny_finder.find_experts(need, window=1.5)
            with pytest.raises(ValueError):
                tiny_finder.find_experts(need, window=True)

    def test_compile_rejects_out_of_range_distance(self, analyzer):
        g = SocialGraph(Platform.TWITTER)
        g.add_profile(
            UserProfile(profile_id="a", platform=Platform.TWITTER, display_name="a")
        )
        g.add_resource(
            Resource(resource_id="t1", platform=Platform.TWITTER,
                     text="some text here", language="en")
        )
        g.link_resource("a", "t1", RelationKind.CREATES)
        finder = ExpertFinder.build(g, ("a",), analyzer, FinderConfig())
        broken = {doc: [("a", 99)] for doc in finder.evidence_of}
        with pytest.raises(ValueError, match="distance"):
            ColumnarQueryEngine.compile(finder.retriever, broken, finder.config)

    def test_scratch_recovers_after_mid_query_failure(
        self, tiny_finder, tiny_dataset, monkeypatch
    ):
        engine = tiny_finder.query_engine()
        need = tiny_dataset.queries[0].text
        query = tiny_finder._analyzer.analyze("__query__", need, language="en")
        expected = engine.find_experts(query, alpha=0.6, window=100)

        real = columnar_module.window_size
        calls = {"n": 0}

        def flaky(window, total):
            calls["n"] += 1
            if calls["n"] == 2:  # first call validates, second is mid-query
                raise RuntimeError("boom")
            return real(window, total)

        monkeypatch.setattr(columnar_module, "window_size", flaky)
        with pytest.raises(RuntimeError):
            engine.find_experts(query, alpha=0.6, window=100)
        monkeypatch.setattr(columnar_module, "window_size", real)
        # the failed query dirtied the accumulators mid-flight; the next
        # query must still be exact
        assert engine.find_experts(query, alpha=0.6, window=100) == expected

    def test_engine_selector_validation(self, tiny_finder):
        with pytest.raises(ValueError):
            tiny_finder.engine = "simd"
        tiny_finder.engine = "columnar-pruned"
        assert tiny_finder.engine == "columnar-pruned"
        tiny_finder.engine = "columnar"
        assert tiny_finder.engine == "columnar"


class TestBlockMaxPruning:
    """Routing and edge cases of the block-max evaluation mode; the
    ``pruned == object`` equality itself is asserted by every
    ``both_engines`` call in this module."""

    def _query(self, tiny_finder, tiny_dataset, index=0):
        need = tiny_dataset.queries[index].text
        return tiny_finder._analyzer.analyze("__query__", need, language="en")

    def test_absolute_windows_take_the_pruned_path(
        self, tiny_finder, tiny_dataset
    ):
        engine = tiny_finder.query_engine()
        query = self._query(tiny_finder, tiny_dataset)
        stats = PruningStats()
        for window in (1, 10, 10**9):
            engine.find_experts(
                query, alpha=0.6, window=window, pruned=True, stats=stats
            )
        assert stats.pruned_queries == 3
        assert stats.fallback_queries == 0
        assert stats.blocks_scanned > 0

    def test_fractional_and_none_windows_fall_back(
        self, tiny_finder, tiny_dataset
    ):
        # their width depends on the total match count, which pruning
        # never learns — they must route to the exhaustive path, and
        # loudly (counted), not silently
        engine = tiny_finder.query_engine()
        query = self._query(tiny_finder, tiny_dataset)
        stats = PruningStats()
        for window in (0.25, 1.0, None):
            engine.find_experts(
                query, alpha=0.6, window=window, pruned=True, stats=stats
            )
        assert stats.pruned_queries == 0
        assert stats.fallback_queries == 3
        assert stats.blocks_scanned == stats.blocks_skipped == 0

    def test_alpha_extremes_disable_one_leg(self, tiny_finder, tiny_dataset):
        # α=1.0 zeroes the entity leg's bounds, α=0.0 the term leg's —
        # both must still prune exactly (and actually skip something)
        engine = tiny_finder.query_engine()
        for alpha in (0.0, 1.0):
            stats = PruningStats()
            for need in tiny_dataset.queries[:6]:
                query = tiny_finder._analyzer.analyze(
                    "__query__", need.text, language="en"
                )
                exhaustive = engine.find_experts(query, alpha=alpha, window=5)
                pruned = engine.find_experts(
                    query, alpha=alpha, window=5, pruned=True, stats=stats
                )
                assert pruned == exhaustive
            assert stats.blocks_skipped > 0

    def test_window_wider_than_candidate_doc_set(
        self, tiny_finder, tiny_dataset
    ):
        # the heap never fills, so no block may be skipped — and the
        # result must still equal the exhaustive ranking exactly
        engine = tiny_finder.query_engine()
        query = self._query(tiny_finder, tiny_dataset)
        stats = PruningStats()
        wide = engine.document_count + 100
        expected = engine.find_experts(query, alpha=0.6, window=wide)
        got = engine.find_experts(
            query, alpha=0.6, window=wide, pruned=True, stats=stats
        )
        assert got == expected
        assert stats.blocks_skipped == 0
        assert stats.blocks_scanned > 0

    @pytest.mark.parametrize("span", (1, 8, 4096))
    def test_block_span_never_changes_rankings(
        self, tiny_finder, tiny_dataset, span
    ):
        engine = ColumnarQueryEngine.compile(
            tiny_finder.retriever,
            tiny_finder.evidence_of,
            tiny_finder.config,
            block_span=span,
        )
        assert engine.block_span == span
        default = tiny_finder.query_engine()
        for need in tiny_dataset.queries[:6]:
            query = tiny_finder._analyzer.analyze(
                "__query__", need.text, language="en"
            )
            assert engine.find_experts(
                query, alpha=0.6, window=10, pruned=True
            ) == default.find_experts(query, alpha=0.6, window=10)

    def test_block_span_validation(self, tiny_finder):
        with pytest.raises(ValueError, match="block_span"):
            ColumnarQueryEngine.compile(
                tiny_finder.retriever,
                tiny_finder.evidence_of,
                tiny_finder.config,
                block_span=0,
            )

    def test_finder_pruning_stats_accumulate(self, tiny_finder, tiny_dataset):
        tiny_finder.engine = "columnar-pruned"
        before = tiny_finder.pruning_stats.pruned_queries
        tiny_finder.find_experts(tiny_dataset.queries[0].text, window=5)
        tiny_finder.find_experts(tiny_dataset.queries[0].text, window=0.5)
        stats = tiny_finder.pruning_stats
        assert stats.pruned_queries == before + 1
        assert stats.fallback_queries >= 1
        tiny_finder.engine = "columnar"
