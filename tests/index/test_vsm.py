"""Unit tests for the vector-space retriever (paper Eq. 1–2)."""

import math

import pytest

from repro.index.analyzer import AnalyzedResource
from repro.index.entity_index import EntityIndex
from repro.index.inverted import InvertedIndex
from repro.index.statistics import CollectionStatistics
from repro.index.vsm import VectorSpaceRetriever, entity_weight


def _query(terms=None, entities=None):
    return AnalyzedResource(
        doc_id="__q__",
        language="en",
        term_counts=dict(terms or {}),
        entity_counts=dict(entities or {}),
    )


@pytest.fixture
def retriever():
    terms = InvertedIndex()
    entities = EntityIndex()
    # d1: swimming-heavy with a confident Phelps mention
    terms.add_document("d1", {"swim": 3, "pool": 1})
    entities.add_document("d1", {"wiki/Phelps": (1, 0.9)})
    # d2: one mention of swim, no entities
    terms.add_document("d2", {"swim": 1, "lunch": 2})
    entities.add_document("d2", {})
    # d3: off topic
    terms.add_document("d3", {"guitar": 2})
    entities.add_document("d3", {"wiki/Jackson": (2, 0.5)})
    return VectorSpaceRetriever(terms, entities)


class TestEntityWeight:
    def test_eq2_positive(self):
        assert entity_weight(0.5) == 1.5

    def test_eq2_zero(self):
        assert entity_weight(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            entity_weight(-0.1)


class TestRetrieve:
    def test_term_only_ranking(self, retriever):
        matches = retriever.retrieve(_query(terms={"swim": 1}), alpha=1.0)
        assert [m.doc_id for m in matches] == ["d1", "d2"]
        assert matches[0].score > matches[1].score

    def test_entity_only_ranking(self, retriever):
        matches = retriever.retrieve(_query(entities={"wiki/Phelps": (1, 1.0)}), alpha=0.0)
        assert [m.doc_id for m in matches] == ["d1"]

    def test_alpha_blends(self, retriever):
        q = _query(terms={"guitar": 1}, entities={"wiki/Jackson": (1, 1.0)})
        full = retriever.retrieve(q, alpha=0.5)[0]
        assert full.term_score > 0 and full.entity_score > 0
        assert full.score == pytest.approx(
            0.5 * full.term_score + 0.5 * full.entity_score
        )

    def test_eq1_term_value(self, retriever):
        matches = retriever.retrieve(_query(terms={"swim": 1}), alpha=1.0)
        irf = retriever.statistics.irf("swim")
        assert matches[0].term_score == pytest.approx(3 * irf**2)

    def test_eq1_entity_value(self, retriever):
        matches = retriever.retrieve(_query(entities={"wiki/Phelps": (1, 1.0)}), alpha=0.0)
        eirf = retriever.statistics.eirf("wiki/Phelps")
        assert matches[0].entity_score == pytest.approx(1 * eirf**2 * (1 + 0.9))

    def test_no_match(self, retriever):
        assert retriever.retrieve(_query(terms={"ghost": 1}), alpha=1.0) == []

    def test_alpha_one_ignores_entities(self, retriever):
        matches = retriever.retrieve(
            _query(entities={"wiki/Phelps": (1, 1.0)}), alpha=1.0
        )
        assert matches == []

    def test_alpha_zero_ignores_terms(self, retriever):
        matches = retriever.retrieve(_query(terms={"swim": 1}), alpha=0.0)
        assert matches == []

    def test_alpha_validation(self, retriever):
        with pytest.raises(ValueError):
            retriever.retrieve(_query(), alpha=1.5)

    def test_deterministic_tie_break(self, retriever):
        # two docs with identical scores order by doc id
        terms = InvertedIndex()
        entities = EntityIndex()
        terms.add_document("b", {"x": 1})
        terms.add_document("a", {"x": 1})
        entities.add_document("b", {})
        entities.add_document("a", {})
        r = VectorSpaceRetriever(terms, entities)
        matches = r.retrieve(_query(terms={"x": 1}), alpha=1.0)
        assert [m.doc_id for m in matches] == ["a", "b"]

    def test_idf_exponent_ablation(self):
        terms = InvertedIndex()
        entities = EntityIndex()
        terms.add_document("d1", {"rare": 1})
        terms.add_document("d2", {"noise": 1})
        entities.add_document("d1", {})
        entities.add_document("d2", {})
        squared = VectorSpaceRetriever(terms, entities, idf_exponent=2.0)
        linear = VectorSpaceRetriever(terms, entities, idf_exponent=1.0)
        q = _query(terms={"rare": 1})
        s2 = squared.retrieve(q, alpha=1.0)[0].score
        s1 = linear.retrieve(q, alpha=1.0)[0].score
        irf = squared.statistics.irf("rare")
        assert s2 == pytest.approx(s1 * irf)


class TestRetrieveTopK:
    QUERY = {
        "q": _query(
            terms={"swim": 1, "pool": 1, "lunch": 1},
            entities={"wiki/Phelps": (1, 1.0), "wiki/Jackson": (1, 1.0)},
        )
    }

    @pytest.mark.parametrize("alpha", [0.0, 0.4, 0.6, 1.0])
    def test_agrees_with_full_retrieve_prefix(self, retriever, alpha):
        full = retriever.retrieve(self.QUERY["q"], alpha)
        for k in range(len(full) + 2):
            assert retriever.retrieve_top_k(self.QUERY["q"], alpha, k) == full[:k]

    def test_tie_break_matches_full_sort(self):
        terms = InvertedIndex()
        entities = EntityIndex()
        for doc in ("d", "b", "c", "a"):
            terms.add_document(doc, {"x": 1})
            entities.add_document(doc, {})
        r = VectorSpaceRetriever(terms, entities)
        q = _query(terms={"x": 1})
        assert [m.doc_id for m in r.retrieve_top_k(q, 1.0, 2)] == ["a", "b"]

    def test_negative_k_rejected(self, retriever):
        with pytest.raises(ValueError):
            retriever.retrieve_top_k(self.QUERY["q"], 1.0, -1)

    def test_alpha_validated_even_for_zero_k(self, retriever):
        with pytest.raises(ValueError):
            retriever.retrieve_top_k(self.QUERY["q"], 1.5, 0)

    def test_weight_cache_invalidated_by_add_document(self, retriever):
        q = _query(terms={"swim": 1}, entities={"wiki/Phelps": (1, 1.0)})
        before = retriever.retrieve_top_k(q, 0.5, 5)
        assert before  # weights are now memoized
        retriever.add_document(
            AnalyzedResource(
                doc_id="d4",
                language="en",
                term_counts={"swim": 2},
                entity_counts={"wiki/Phelps": (1, 0.8)},
            )
        )
        after = retriever.retrieve_top_k(q, 0.5, 5)
        fresh = VectorSpaceRetriever(
            retriever.term_index, retriever.entity_index
        ).retrieve(q, 0.5)[:5]
        assert after == fresh
        assert {m.doc_id for m in after} != {m.doc_id for m in before}


class TestAutomaticWeightRefresh:
    def test_direct_index_merge_refreshes_weights(self, retriever):
        # a shard merged directly into the underlying indexes (the
        # parallel build's combiner path) must be retrievable — and must
        # re-weight existing postings — without a manual invalidate()
        before = retriever.retrieve(_query(terms={"swim": 1}), alpha=1.0)
        shard_t = InvertedIndex()
        shard_t.add_document("d4", {"swim": 2})
        shard_e = EntityIndex()
        shard_e.add_document("d4", {})
        retriever.term_index.merge(shard_t)
        retriever.entity_index.merge(shard_e)
        after = retriever.retrieve(_query(terms={"swim": 1}), alpha=1.0)
        assert "d4" in {m.doc_id for m in after}
        # df(swim) rose from 2 to 3 of now-4 docs → every score shifted
        assert {m.doc_id: m.score for m in after}["d1"] != (
            {m.doc_id: m.score for m in before}["d1"]
        )
