"""Unit tests for the entity inverted index."""

import pytest

from repro.index.entity_index import EntityIndex, EntityPosting


@pytest.fixture
def index():
    idx = EntityIndex()
    idx.add_document("d1", {"wiki/A": (2, 0.9), "wiki/B": (1, 0.4)})
    idx.add_document("d2", {"wiki/A": (1, 0.7)})
    return idx


class TestEntityIndex:
    def test_document_count(self, index):
        assert index.document_count == 2

    def test_entity_count(self, index):
        assert index.entity_count == 2

    def test_postings_carry_dscore(self, index):
        postings = index.postings("wiki/A")
        assert postings == (
            EntityPosting("d1", 2, 0.9),
            EntityPosting("d2", 1, 0.7),
        )

    def test_document_frequency(self, index):
        assert index.document_frequency("wiki/A") == 2
        assert index.document_frequency("wiki/B") == 1
        assert index.document_frequency("wiki/Z") == 0

    def test_contains(self, index):
        assert "wiki/A" in index
        assert "wiki/Z" not in index

    def test_duplicate_document_rejected(self, index):
        with pytest.raises(ValueError):
            index.add_document("d1", {})

    def test_zero_count_skipped(self):
        idx = EntityIndex()
        idx.add_document("d", {"wiki/X": (0, 0.5)})
        assert "wiki/X" not in idx

    def test_posting_validation(self):
        with pytest.raises(ValueError):
            EntityPosting("d", 1, 1.5)
        with pytest.raises(ValueError):
            EntityPosting("d", 0, 0.5)

    def test_entities_listing(self, index):
        assert set(index.entities()) == {"wiki/A", "wiki/B"}
