"""Unit tests for the segmented incremental index (sealed segments,
write buffer, tiered compaction).

These are index-level tests over hand-built :class:`AnalyzedResource`
objects — no analyzer or dataset needed. The end-to-end streaming
equivalence against monolithic cold rebuilds lives in
``tests/core/test_streaming.py``."""

import math

import pytest

from repro.core.config import FinderConfig
from repro.index.analyzer import AnalyzedResource
from repro.index.entity_index import EntityIndex
from repro.index.inverted import InvertedIndex
from repro.index.segments import Segment, SegmentedIndex
from repro.index.statistics import CollectionStatistics


def _res(doc_id, terms, entities=None, language="en"):
    return AnalyzedResource(
        doc_id=doc_id,
        language=language,
        term_counts=dict(terms),
        entity_counts=dict(entities or {}),
    )


# a small deterministic stream: (resource, supporters) in admission order
_STREAM = [
    (_res("d1", {"swim": 2, "pool": 1}, {"ent:pool": (1, 0.8)}), (("alice", 1),)),
    (_res("d2", {"swim": 1, "race": 1}), (("bob", 1),)),
    (_res("d3", {"guitar": 3}, {"ent:band": (2, 0.5)}), (("bob", 2),)),
    (_res("d4", {"pool": 2, "race": 1}), (("alice", 1), ("bob", 2))),
    (_res("d5", {"swim": 1, "guitar": 1}, {"ent:pool": (1, 0.3)}), (("alice", 2),)),
]

_QUERIES = [
    (_res("q:swim", {"swim": 1, "race": 1}), 0.6),
    (_res("q:pool", {"pool": 1}, {"ent:pool": (1, 0.9)}), 0.5),
    (_res("q:band", {"guitar": 1}, {"ent:band": (1, 0.9)}), 0.0),
    (_res("q:terms", {"swim": 1, "guitar": 1}), 1.0),
]


@pytest.fixture
def config():
    return FinderConfig(window=None)


def _streamed(config, **kwargs):
    index = SegmentedIndex(config, **kwargs)
    for analyzed, supporters in _STREAM:
        index.add(analyzed, supporters)
    return index


def _reference(config):
    """The same stream as one cold-built base segment."""
    term_index = InvertedIndex()
    entity_index = EntityIndex()
    evidence = {}
    for analyzed, supporters in _STREAM:
        term_index.add_document(analyzed.doc_id, analyzed.term_counts)
        entity_index.add_document(analyzed.doc_id, analyzed.entity_counts)
        evidence[analyzed.doc_id] = supporters
    return SegmentedIndex.from_built(term_index, entity_index, evidence, config)


def _rankings(index):
    return [
        index.find_experts(query, alpha=alpha, window=None)
        for query, alpha in _QUERIES
    ]


class TestSealBoundary:
    def test_below_threshold_stays_buffered(self, config):
        index = SegmentedIndex(config, seal_threshold=3, compaction="manual")
        for analyzed, supporters in _STREAM[:2]:
            index.add(analyzed, supporters)
        stats = index.stats
        assert (stats.segments, stats.buffered, stats.seals) == (0, 2, 0)

    def test_threshold_resource_seals(self, config):
        index = SegmentedIndex(config, seal_threshold=3, compaction="manual")
        for analyzed, supporters in _STREAM[:3]:
            index.add(analyzed, supporters)
        stats = index.stats
        assert (stats.segments, stats.buffered, stats.seals) == (1, 0, 1)
        assert stats.segment_docs == (3,)
        assert stats.documents == 3

    def test_evidence_only_resources_count_toward_threshold(self, config):
        # the language cut admits evidence-only resources; they occupy
        # buffer slots and must seal like indexed ones
        index = SegmentedIndex(config, seal_threshold=2, compaction="manual")
        index.add(_res("it1", {}, language="it"), (("alice", 1),), index=False)
        index.add(_res("it2", {}, language="it"), (("bob", 1),), index=False)
        stats = index.stats
        assert (stats.segments, stats.buffered) == (1, 0)
        assert stats.documents == 0  # nothing indexed
        assert stats.resources == 2

    def test_manual_seal_of_empty_buffer_is_noop(self, config):
        index = SegmentedIndex(config, compaction="manual")
        assert index.seal() is None
        assert index.stats.seals == 0

    def test_manual_seal_flushes_buffer(self, config):
        index = SegmentedIndex(config, compaction="manual")
        index.add(*_STREAM[0])
        segment = index.seal()
        assert segment is not None
        assert segment.document_count == 1
        assert index.stats.buffered == 0


class TestCompaction:
    def test_tiered_compaction_merges_same_tier_run(self, config):
        # threshold 1: every add seals → four tier-0 singleton segments
        index = _streamed(
            config, seal_threshold=1, compaction="manual", fanout=2
        )
        assert index.stats.segments == len(_STREAM)
        before = _rankings(index)
        merges = index.compact()
        assert merges >= 1
        stats = index.stats
        assert stats.segments < len(_STREAM)
        assert stats.compactions == merges
        assert _rankings(index) == before

    def test_merged_evidence_preserves_stream_order(self, config):
        index = _streamed(
            config, seal_threshold=1, compaction="manual", fanout=2
        )
        index.compact(full=True)
        (segment,) = index.iter_segments()
        assert list(segment.evidence) == [a.doc_id for a, _ in _STREAM]
        assert segment.evidence["d4"] == (("alice", 1), ("bob", 2))

    def test_full_compact_sweeps_buffer_into_one_segment(self, config):
        index = _streamed(config, seal_threshold=2, compaction="manual")
        assert index.stats.segments > 1 or index.stats.buffered > 0
        before = _rankings(index)
        assert index.compact(full=True) == 1
        stats = index.stats
        assert (stats.segments, stats.buffered) == (1, 0)
        assert stats.documents == len(_STREAM)
        assert _rankings(index) == before

    def test_full_compact_of_single_segment_is_noop(self, config):
        index = _reference(config)
        assert index.compact(full=True) == 0
        assert index.stats.compactions == 0

    def test_synchronous_mode_compacts_on_seal(self, config):
        index = _streamed(config, seal_threshold=1, fanout=2)
        # each seal triggered an inline pass; no fanout-sized run of
        # same-tier segments may survive
        assert index.stats.compactions >= 1
        assert index._plan(index.iter_segments()) is None

    def test_streaming_continues_after_compaction(self, config):
        index = _streamed(config, seal_threshold=1, compaction="manual", fanout=2)
        index.compact(full=True)
        index.add(_res("d6", {"swim": 4}), (("bob", 1),))
        ranked = index.find_experts(
            _res("q", {"swim": 1}), alpha=1.0, window=None
        )
        assert "bob" in {e.candidate_id for e in ranked}


class TestSegmentationInvariance:
    """Rankings must not depend on how the collection is segmented."""

    @pytest.mark.parametrize("seal_threshold", [1, 2, 3, len(_STREAM) + 1])
    def test_rankings_byte_identical_to_base_segment(self, config, seal_threshold):
        reference = _rankings(_reference(config))
        streamed = _streamed(
            config, seal_threshold=seal_threshold, compaction="manual"
        )
        assert _rankings(streamed) == reference
        streamed.compact()
        assert _rankings(streamed) == reference
        streamed.compact(full=True)
        assert _rankings(streamed) == reference

    def test_retrieval_matches_across_segmentations(self, config):
        reference = _reference(config)
        streamed = _streamed(config, seal_threshold=2, compaction="manual")
        for query, alpha in _QUERIES:
            full = reference.retrieve(query, alpha)
            assert streamed.retrieve(query, alpha) == full
            for k in (1, 3, len(full) + 5):
                assert streamed.retrieve_top_k(query, alpha, k) == full[:k]

    def test_window_cut_is_global(self, config):
        # window=2 must pick the globally best two resources even when
        # they live in different segments
        reference = _reference(config)
        streamed = _streamed(config, seal_threshold=1, compaction="manual")
        for query, alpha in _QUERIES:
            assert streamed.find_experts(
                query, alpha=alpha, window=2
            ) == reference.find_experts(query, alpha=alpha, window=2)


class TestUnionStatistics:
    def test_irf_matches_monolithic_statistics(self, config):
        streamed = _streamed(config, seal_threshold=2, compaction="manual")
        term_index = InvertedIndex()
        entity_index = EntityIndex()
        for analyzed, _ in _STREAM:
            term_index.add_document(analyzed.doc_id, analyzed.term_counts)
            entity_index.add_document(analyzed.doc_id, analyzed.entity_counts)
        mono = CollectionStatistics(term_index, entity_index)
        for term in ("swim", "pool", "race", "guitar", "ghost"):
            assert streamed.irf(term) == mono.irf(term)
        for uri in ("ent:pool", "ent:band", "ent:ghost"):
            assert streamed.eirf(uri) == mono.eirf(uri)

    def test_irf_formula(self, config):
        streamed = _streamed(config, seal_threshold=2, compaction="manual")
        # "swim" appears in d1, d2, d5 of 5 indexed docs
        assert streamed.irf("swim") == math.log(1.0 + 5 / 3)
        assert streamed.irf("ghost") == 0.0

    def test_stale_irf_is_impossible_after_add(self, config):
        index = _streamed(config, seal_threshold=10, compaction="manual")
        stale_irf = index.irf("swim")
        stale_eirf = index.eirf("ent:pool")
        index.add(
            _res("d6", {"swim": 1}, {"ent:pool": (1, 0.9)}), (("alice", 1),)
        )
        # the very next read reflects the new ratios — no invalidate call
        assert index.irf("swim") != stale_irf
        assert index.eirf("ent:pool") != stale_eirf

    def test_evidence_only_add_does_not_shift_statistics(self, config):
        index = _streamed(config, seal_threshold=10, compaction="manual")
        before = index.irf("swim")
        index.add(_res("it1", {}, language="it"), (("alice", 1),), index=False)
        assert index.irf("swim") == before
        assert index.document_count == 5
        assert index.resource_count == 6


class TestValidation:
    def test_duplicate_resource_rejected(self, config):
        index = _streamed(config, compaction="manual")
        with pytest.raises(ValueError, match="already admitted"):
            index.add(_res("d1", {"x": 1}), (("alice", 1),))

    def test_empty_supporters_rejected(self, config):
        index = SegmentedIndex(config)
        with pytest.raises(ValueError, match="at least one"):
            index.add(_res("d1", {"x": 1}), ())

    def test_out_of_range_distance_rejected(self, config):
        index = SegmentedIndex(config)
        with pytest.raises(ValueError, match="distance 7"):
            index.add(_res("d1", {"x": 1}), (("alice", 7),))

    def test_constructor_parameter_validation(self, config):
        with pytest.raises(ValueError, match="seal_threshold"):
            SegmentedIndex(config, seal_threshold=0)
        with pytest.raises(ValueError, match="fanout"):
            SegmentedIndex(config, fanout=1)
        with pytest.raises(ValueError, match="compaction"):
            SegmentedIndex(config, compaction="bogus")

    def test_alpha_and_window_validated(self, config):
        index = _streamed(config, compaction="manual")
        query = _res("q", {"swim": 1})
        with pytest.raises(ValueError, match="alpha"):
            index.find_experts(query, alpha=1.5, window=None)
        with pytest.raises(ValueError):
            index.find_experts(query, alpha=0.5, window=-1)
        with pytest.raises(ValueError, match="non-negative"):
            index.retrieve_top_k(query, 0.5, -1)

    def test_segment_rejects_diverging_doc_ids(self):
        term_index = InvertedIndex()
        term_index.add_document("a", {"x": 1})
        with pytest.raises(ValueError, match="disagree"):
            Segment(0, term_index, EntityIndex(), {})

    def test_restore_rejects_duplicate_doc_across_segments(self, config):
        def _slice(doc_id):
            term_index = InvertedIndex()
            term_index.add_document(doc_id, {"x": 1})
            entity_index = EntityIndex()
            entity_index.add_document(doc_id, {})
            return term_index, entity_index, {doc_id: (("alice", 1),)}

        with pytest.raises(ValueError, match="more than one place"):
            SegmentedIndex.restore(
                config,
                [(0, *_slice("dup")), (1, *_slice("dup"))],
                None,
            )


class TestBackgroundCompaction:
    def test_background_mode_merges_and_preserves_rankings(self, config):
        reference = _rankings(_reference(config))
        with SegmentedIndex(
            config, seal_threshold=1, compaction="background", fanout=2
        ) as index:
            for analyzed, supporters in _STREAM:
                index.add(analyzed, supporters)
            index.await_compactions()
            assert index.stats.compactions >= 1
            assert index._plan(index.iter_segments()) is None
            assert _rankings(index) == reference
        # close() stopped the compactor thread and is idempotent
        assert index._thread is None
        index.close()

    def test_close_raises_when_compactor_is_wedged(self, config):
        import threading

        index = SegmentedIndex(config, seal_threshold=1, compaction="background")
        try:
            entered = threading.Event()
            release = threading.Event()

            def wedged_compact():
                entered.set()
                release.wait()

            # shadow the bound method: the worker loop calls self.compact()
            index.compact = wedged_compact
            index._wake.set()
            assert entered.wait(timeout=5.0)

            # the compactor is stuck mid-"merge": close must surface it,
            # not silently abandon the thread
            with pytest.raises(RuntimeError, match="did not stop"):
                index.close(timeout=0.1)
            assert index._thread is not None  # handle kept for a retry

            release.set()
            index.close(timeout=5.0)  # the retry succeeds once unwedged
            assert index._thread is None
            index.close()  # and stays idempotent
        finally:
            release.set()
