"""Unit tests for collection statistics (irf/eirf)."""

import math

import pytest

from repro.index.entity_index import EntityIndex
from repro.index.inverted import InvertedIndex
from repro.index.statistics import CollectionStatistics


@pytest.fixture
def stats():
    terms = InvertedIndex()
    entities = EntityIndex()
    terms.add_document("d1", {"common": 1, "rare": 1})
    terms.add_document("d2", {"common": 1})
    terms.add_document("d3", {"common": 2})
    entities.add_document("d1", {"wiki/E": (1, 0.8)})
    entities.add_document("d2", {})
    entities.add_document("d3", {})
    return CollectionStatistics(terms, entities)


class TestStatistics:
    def test_resource_count(self, stats):
        assert stats.resource_count == 3

    def test_rare_term_weighs_more(self, stats):
        assert stats.irf("rare") > stats.irf("common")

    def test_irf_values(self, stats):
        assert stats.irf("rare") == pytest.approx(math.log(1 + 3 / 1))
        assert stats.irf("common") == pytest.approx(math.log(1 + 3 / 3))

    def test_unseen_term_zero(self, stats):
        assert stats.irf("ghost") == 0.0

    def test_eirf(self, stats):
        assert stats.eirf("wiki/E") == pytest.approx(math.log(1 + 3 / 1))
        assert stats.eirf("wiki/Z") == 0.0

    def test_cache_consistency(self, stats):
        assert stats.irf("rare") == stats.irf("rare")

    def test_mismatched_indexes_rejected(self):
        terms = InvertedIndex()
        terms.add_document("d1", {"a": 1})
        entities = EntityIndex()
        with pytest.raises(ValueError):
            CollectionStatistics(terms, entities)


class TestAutomaticRefresh:
    """Write-path auto-invalidation: direct ``add_document``/``merge``
    calls on the underlying indexes must be visible on the very next
    statistics read — stale irf values are impossible, with no
    caller-side ``invalidate()`` discipline."""

    @staticmethod
    def _indexes():
        terms = InvertedIndex()
        entities = EntityIndex()
        terms.add_document("d1", {"common": 1})
        entities.add_document("d1", {"wiki/E": (1, 0.8)})
        terms.add_document("d2", {"other": 1})
        entities.add_document("d2", {})
        return terms, entities

    def test_direct_add_refreshes_irf(self):
        terms, entities = self._indexes()
        stats = CollectionStatistics(terms, entities)
        stale = stats.irf("common")
        terms.add_document("d3", {"common": 1})
        entities.add_document("d3", {})
        assert stats.resource_count == 3
        assert stats.irf("common") == pytest.approx(math.log(1 + 3 / 2))
        assert stats.irf("common") != stale

    def test_direct_add_refreshes_eirf(self):
        terms, entities = self._indexes()
        stats = CollectionStatistics(terms, entities)
        stale = stats.eirf("wiki/E")
        terms.add_document("d3", {})
        entities.add_document("d3", {"wiki/E": (2, 0.5)})
        assert stats.eirf("wiki/E") == pytest.approx(math.log(1 + 3 / 2))
        assert stats.eirf("wiki/E") != stale

    def test_new_term_visible_without_invalidate(self):
        terms, entities = self._indexes()
        stats = CollectionStatistics(terms, entities)
        assert stats.irf("fresh") == 0.0
        terms.add_document("d3", {"fresh": 1})
        entities.add_document("d3", {})
        assert stats.irf("fresh") == pytest.approx(math.log(1 + 3 / 1))

    def test_version_counters_bump_on_writes(self):
        terms = InvertedIndex()
        entities = EntityIndex()
        assert (terms.version, entities.version) == (0, 0)
        terms.add_document("d1", {"a": 1})
        entities.add_document("d1", {})
        assert (terms.version, entities.version) == (1, 1)
        shard_t = InvertedIndex()
        shard_t.add_document("d2", {"b": 1})
        shard_e = EntityIndex()
        shard_e.add_document("d2", {})
        terms.merge(shard_t)
        entities.merge(shard_e)
        assert (terms.version, entities.version) == (2, 2)

    def test_manual_invalidate_still_works(self, stats):
        stats.irf("common")
        stats.invalidate()  # kept for compatibility; must stay harmless
        assert stats.irf("common") == pytest.approx(math.log(1 + 3 / 3))
