"""Unit tests for collection statistics (irf/eirf)."""

import math

import pytest

from repro.index.entity_index import EntityIndex
from repro.index.inverted import InvertedIndex
from repro.index.statistics import CollectionStatistics


@pytest.fixture
def stats():
    terms = InvertedIndex()
    entities = EntityIndex()
    terms.add_document("d1", {"common": 1, "rare": 1})
    terms.add_document("d2", {"common": 1})
    terms.add_document("d3", {"common": 2})
    entities.add_document("d1", {"wiki/E": (1, 0.8)})
    entities.add_document("d2", {})
    entities.add_document("d3", {})
    return CollectionStatistics(terms, entities)


class TestStatistics:
    def test_resource_count(self, stats):
        assert stats.resource_count == 3

    def test_rare_term_weighs_more(self, stats):
        assert stats.irf("rare") > stats.irf("common")

    def test_irf_values(self, stats):
        assert stats.irf("rare") == pytest.approx(math.log(1 + 3 / 1))
        assert stats.irf("common") == pytest.approx(math.log(1 + 3 / 3))

    def test_unseen_term_zero(self, stats):
        assert stats.irf("ghost") == 0.0

    def test_eirf(self, stats):
        assert stats.eirf("wiki/E") == pytest.approx(math.log(1 + 3 / 1))
        assert stats.eirf("wiki/Z") == 0.0

    def test_cache_consistency(self, stats):
        assert stats.irf("rare") == stats.irf("rare")

    def test_mismatched_indexes_rejected(self):
        terms = InvertedIndex()
        terms.add_document("d1", {"a": 1})
        entities = EntityIndex()
        with pytest.raises(ValueError):
            CollectionStatistics(terms, entities)
