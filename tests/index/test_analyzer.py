"""Unit tests for the resource analyzer (terms + entities)."""

import pytest


class TestResourceAnalyzer:
    def test_terms_are_stemmed_counts(self, analyzer):
        out = analyzer.analyze("d", "swimming swimming pools", language="en")
        assert out.term_counts["swim"] == 2
        assert out.term_counts["pool"] == 1

    def test_stop_words_removed(self, analyzer):
        out = analyzer.analyze("d", "the best of the best", language="en")
        assert "the" not in out.term_counts
        assert "of" not in out.term_counts

    def test_short_text_without_language_is_und(self, analyzer):
        out = analyzer.analyze("d", "gold medal")
        assert out.language == "und"

    def test_entities_extracted_with_dscore(self, analyzer):
        out = analyzer.analyze("d", "michael phelps is the best freestyle swimmer today")
        assert "wiki/Michael_Phelps" in out.entity_counts
        count, d_score = out.entity_counts["wiki/Michael_Phelps"]
        assert count == 1
        assert 0.0 < d_score <= 1.0

    def test_repeated_entity_counted(self, analyzer):
        out = analyzer.analyze(
            "d", "michael phelps met michael phelps at the pool", language="en"
        )
        assert out.entity_counts["wiki/Michael_Phelps"][0] == 2

    def test_non_english_has_no_entities(self, analyzer):
        out = analyzer.analyze(
            "d", "questa e una bella giornata per andare in piscina con gli amici"
        )
        assert out.language == "it"
        assert out.entity_counts == {}

    def test_language_override(self, analyzer):
        out = analyzer.analyze("d", "qualcosa", language="en")
        assert out.language == "en"

    def test_doc_length(self, analyzer):
        out = analyzer.analyze("d", "gold medal gold medal gold")
        assert out.length == 5

    def test_doc_id_preserved(self, analyzer):
        assert analyzer.analyze("some:id", "hello world").doc_id == "some:id"
