"""Tests for candidate-sharded scatter-gather query execution.

The load-bearing property is *shard-count invariance*: for any shard
count K and any engine, a sharded finder must rank byte-identically to
the unsharded build over the same stream — including after streaming
observes between queries, and whether shards are evaluated serially in
the coordinator or scattered to the worker pool.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.index.sharded import (
    GlobalStatistics,
    ShardedQueryExecutor,
    partition_candidates,
)
from repro.synthetic.stream import stream_candidates, stream_queries, stream_resources

_SHARD_COUNTS = (1, 2, 3, 5)
_ENGINES = ("object", "columnar", "columnar-pruned")
_WINDOWS = (10, 3, 1000, 0.5, None)

_CANDIDATES = stream_candidates(8)
_RESOURCES = 90
_SEED = 41


def _events():
    return stream_resources(_CANDIDATES, _RESOURCES, seed=_SEED)


def _build(analyzer, shards=None):
    return ExpertFinder.from_stream(
        _CANDIDATES,
        _events(),
        analyzer,
        FinderConfig(window=None),
        shards=shards,
    )


@pytest.fixture(scope="module")
def reference(analyzer):
    """The unsharded finder over the module stream (read-only)."""
    return _build(analyzer)


@pytest.fixture(scope="module")
def queries():
    return stream_queries(5, seed=_SEED)


class TestPartition:
    def test_disjoint_cover(self):
        groups = partition_candidates(_CANDIDATES, 3)
        assert len(groups) == 3
        merged = [cid for group in groups for cid in group]
        assert sorted(merged) == sorted(_CANDIDATES)

    def test_deterministic_and_order_independent(self):
        assert partition_candidates(_CANDIDATES, 3) == partition_candidates(
            list(reversed(_CANDIDATES)), 3
        )

    def test_more_shards_than_candidates(self):
        groups = partition_candidates(["a", "b"], 5)
        assert len(groups) == 5
        assert sum(len(g) for g in groups) == 2

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError, match="shards"):
            partition_candidates(_CANDIDATES, 0)

    def test_empty_candidates(self):
        with pytest.raises(ValueError, match="empty candidate"):
            partition_candidates([], 2)

    def test_balanced(self):
        groups = partition_candidates(stream_candidates(10), 3)
        sizes = sorted(len(g) for g in groups)
        assert max(sizes) - min(sizes) <= 1


class TestGlobalStatistics:
    def test_irf_zero_for_unknown(self):
        stats = GlobalStatistics(1.0)
        assert stats.irf("nope") == 0.0
        assert stats.eirf("nope") == 0.0

    def test_pickle_roundtrip(self, reference):
        import pickle

        stats = reference.sharded_index if reference.sharded_index else None
        from repro.index.analyzer import AnalyzedResource

        source = GlobalStatistics(1.0)
        source.add_document(
            AnalyzedResource(
                doc_id="d1",
                language="en",
                term_counts={"swim": 2},
                entity_counts={"ent:pool": (1, 0.5)},
            )
        )
        clone = pickle.loads(pickle.dumps(source))
        assert clone.doc_count == source.doc_count
        assert clone.irf("swim") == source.irf("swim")
        assert clone.eirf("ent:pool") == source.eirf("ent:pool")
        assert stats is None  # reference finder is unsharded


class TestShardCountInvariance:
    """Rankings must be byte-identical to the unsharded build for every
    shard count × engine × window shape, with observes interleaved."""

    @pytest.mark.parametrize("shards", _SHARD_COUNTS)
    @pytest.mark.parametrize("engine", _ENGINES)
    def test_rankings_identical(self, analyzer, reference, queries, shards, engine):
        sharded = _build(analyzer, shards=shards)
        assert sharded.index_mode == "sharded"
        sharded.engine = engine
        for window in _WINDOWS:
            for text in queries:
                assert sharded.find_experts(text, window=window) == \
                    reference.find_experts(text, window=window)

    @pytest.mark.parametrize("shards", (2, 3))
    def test_observe_between_queries(self, analyzer, queries, shards):
        plain = _build(analyzer)
        sharded = _build(analyzer, shards=shards)
        sharded.engine = "columnar"
        extra = stream_resources(_CANDIDATES, 12, seed=_SEED + 1)
        for i, event in enumerate(extra):
            node_id, text, supporters, *rest = event
            language = rest[0] if rest else None
            indexed_plain = plain.observe(
                f"obs{i}", text, supporters, language=language
            )
            indexed_sharded = sharded.observe(
                f"obs{i}", text, supporters, language=language
            )
            assert indexed_plain == indexed_sharded
            query = queries[i % len(queries)]
            window = _WINDOWS[i % len(_WINDOWS)]
            assert sharded.find_experts(query, window=window) == \
                plain.find_experts(query, window=window)

    def test_retrieval_identical(self, analyzer, reference, queries):
        sharded = _build(analyzer, shards=3).sharded_index
        retriever = reference.retriever
        for text in queries:
            query = analyzer.analyze("__query__", text, language="en")
            expected = retriever.retrieve(query, 0.6)
            assert sharded.retrieve(query, 0.6) == expected
            assert sharded.retrieve_top_k(query, 0.6, 4) == expected[:4]


class TestScatterPool:
    """The executor path must match the serial coordinator exactly."""

    @pytest.mark.parametrize("engine", ("columnar", "columnar-pruned"))
    def test_executor_matches_serial(self, analyzer, reference, queries, engine):
        sharded = _build(analyzer, shards=3)
        sharded.engine = engine
        executor = sharded.start_scatter_pool()
        try:
            assert executor.worker_count == 3
            for window in _WINDOWS:
                for text in queries:
                    assert sharded.find_experts(text, window=window) == \
                        reference.find_experts(text, window=window)
        finally:
            sharded.close_scatter_pool()

    def test_find_experts_many_matches(self, analyzer, reference, queries):
        sharded = _build(analyzer, shards=2)
        sharded.engine = "columnar"
        sharded.start_scatter_pool()
        try:
            batched = sharded.find_experts_many(queries, window=6)
            serial = [reference.find_experts(q, window=6) for q in queries]
            assert batched == serial
            assert sharded.sharded_index.executor.last_batch_depth > 1.0
        finally:
            sharded.close_scatter_pool()

    def test_observe_reaches_workers(self, analyzer, queries):
        plain = _build(analyzer)
        sharded = _build(analyzer, shards=2)
        sharded.engine = "columnar"
        sharded.start_scatter_pool()
        try:
            for i, event in enumerate(
                stream_resources(_CANDIDATES, 6, seed=_SEED + 2)
            ):
                node_id, text, supporters, *rest = event
                language = rest[0] if rest else None
                plain.observe(f"live{i}", text, supporters, language=language)
                sharded.observe(f"live{i}", text, supporters, language=language)
            for text in queries:
                assert sharded.find_experts(text, window=8) == \
                    plain.find_experts(text, window=8)
        finally:
            sharded.close_scatter_pool()

    def test_pool_restart_after_close(self, analyzer, reference, queries):
        sharded = _build(analyzer, shards=2)
        sharded.engine = "columnar"
        first = sharded.start_scatter_pool()
        assert sharded.start_scatter_pool() is first  # idempotent
        sharded.close_scatter_pool()
        sharded.close_scatter_pool()  # idempotent
        second = sharded.start_scatter_pool()
        try:
            assert second is not first
            text = queries[0]
            assert sharded.find_experts(text, window=5) == \
                reference.find_experts(text, window=5)
        finally:
            sharded.close_scatter_pool()

    def test_worker_crash_raises_not_hangs(self, analyzer, queries):
        sharded = _build(analyzer, shards=2)
        sharded.engine = "columnar"
        executor = sharded.start_scatter_pool()
        try:
            os.kill(executor.pids[0], signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            with pytest.raises(RuntimeError, match="worker"):
                sharded.find_experts(queries[0], window=5)
            assert time.monotonic() < deadline, "crash detection hung"
        finally:
            sharded.close_scatter_pool()


class TestValidation:
    def test_shards_require_positive_count(self, analyzer):
        with pytest.raises(ValueError, match="shards"):
            _build(analyzer, shards=0)

    def test_single_shard_allowed(self, analyzer, reference, queries):
        sharded = _build(analyzer, shards=1)
        assert sharded.sharded_index.shard_count == 1
        for text in queries:
            assert sharded.find_experts(text) == reference.find_experts(text)

    def test_stats_shape(self, analyzer):
        sharded = _build(analyzer, shards=3).sharded_index
        stats = sharded.stats
        assert stats.shards == 3
        assert len(stats.shard_docs) == 3
        # duplicated resources make the per-shard sum >= the unique count
        assert sum(stats.shard_docs) >= stats.documents
        assert stats.documents == sharded.document_count

    def test_executor_requires_fork(self, analyzer, monkeypatch):
        import multiprocessing

        sharded = _build(analyzer, shards=2).sharded_index
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        with pytest.raises(RuntimeError, match="fork"):
            ShardedQueryExecutor(sharded.iter_shards())
