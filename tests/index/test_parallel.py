"""Tests for the parallel analysis/indexing building blocks.

The contract under test is determinism: any worker count must produce
results identical to the serial path, in the same order.
"""

import pytest

from repro.index.analyzer import AnalyzedResource
from repro.index.parallel import analyze_tasks, build_indexes


@pytest.fixture(scope="module")
def tasks():
    texts = [
        "Michael Phelps is the best freestyle swimmer",
        "Training for the swimming competition at the pool",
        "La squadra di nuoto italiana",
        "Road cycling in the mountains, great climbs",
        "short",
        "",
        "Basketball playoffs and three point shooting drills",
        "Un texto sobre natación y entrenamiento",
    ] * 8
    return [
        (f"doc{i}", text, "it" if "nuoto" in text else None)
        for i, text in enumerate(texts)
    ]


class TestAnalyzeTasks:
    def test_parallel_matches_serial(self, analyzer, tasks):
        serial = analyze_tasks(analyzer, tasks, workers=1)
        parallel = analyze_tasks(analyzer, tasks, workers=2, chunk_size=7)
        assert parallel == serial
        assert [a.doc_id for a in parallel] == [t[0] for t in tasks]

    def test_respects_language_annotation(self, analyzer, tasks):
        results = {a.doc_id: a for a in analyze_tasks(analyzer, tasks, workers=2, chunk_size=5)}
        for doc_id, _, language in tasks:
            if language is not None:
                assert results[doc_id].language == language

    def test_small_batches_stay_serial(self, analyzer):
        # fewer tasks than one chunk: no pool is spun up
        out = analyze_tasks(
            analyzer, [("d", "swimming race", None)], workers=8, chunk_size=256
        )
        assert len(out) == 1 and out[0].doc_id == "d"

    def test_empty_tasks(self, analyzer):
        assert analyze_tasks(analyzer, [], workers=4) == []

    @pytest.mark.parametrize("workers,chunk_size", [(0, 1), (-1, 1), (1, 0), (2, -5)])
    def test_invalid_pool_args(self, analyzer, workers, chunk_size):
        with pytest.raises(ValueError):
            analyze_tasks(analyzer, [], workers=workers, chunk_size=chunk_size)


def _documents():
    docs = []
    for i in range(40):
        docs.append(
            AnalyzedResource(
                doc_id=f"doc{i}",
                language="en",
                term_counts={f"term{i % 7}": 1 + i % 3, "common": 1},
                entity_counts={f"ent:{i % 5}": (1, 0.5)} if i % 2 else {},
            )
        )
    return docs


class TestBuildIndexes:
    def test_parallel_matches_serial(self):
        docs = _documents()
        serial_terms, serial_entities = build_indexes(docs, workers=1)
        par_terms, par_entities = build_indexes(docs, workers=3, chunk_size=7)
        assert list(par_terms.items()) == list(serial_terms.items())
        assert list(par_entities.items()) == list(serial_entities.items())
        assert par_terms.doc_ids() == serial_terms.doc_ids()
        assert par_entities.doc_ids() == serial_entities.doc_ids()

    def test_empty_documents(self):
        terms, entities = build_indexes([], workers=4)
        assert terms.document_count == 0
        assert entities.document_count == 0

    def test_duplicate_doc_rejected(self):
        docs = _documents()
        docs.append(docs[0])
        with pytest.raises(ValueError):
            build_indexes(docs, workers=1)
        with pytest.raises(ValueError):
            build_indexes(docs, workers=2, chunk_size=5)

    def test_invalid_pool_args(self):
        with pytest.raises(ValueError):
            build_indexes([], workers=0)
