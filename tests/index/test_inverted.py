"""Unit tests for the term inverted index."""

import pytest

from repro.index.inverted import InvertedIndex, Posting


@pytest.fixture
def index():
    idx = InvertedIndex()
    idx.add_document("d1", {"apple": 2, "pear": 1})
    idx.add_document("d2", {"apple": 1})
    idx.add_document("d3", {"plum": 4})
    return idx


class TestInvertedIndex:
    def test_document_count(self, index):
        assert index.document_count == 3

    def test_vocabulary_size(self, index):
        assert index.vocabulary_size == 3

    def test_postings_order_and_tf(self, index):
        postings = index.postings("apple")
        assert postings == (Posting("d1", 2), Posting("d2", 1))

    def test_document_frequency(self, index):
        assert index.document_frequency("apple") == 2
        assert index.document_frequency("plum") == 1
        assert index.document_frequency("ghost") == 0

    def test_contains(self, index):
        assert "apple" in index
        assert "ghost" not in index

    def test_unseen_term_empty_postings(self, index):
        assert index.postings("ghost") == ()

    def test_zero_counts_skipped(self):
        idx = InvertedIndex()
        idx.add_document("d", {"a": 0, "b": 1})
        assert "a" not in idx
        assert "b" in idx

    def test_duplicate_document_rejected(self, index):
        with pytest.raises(ValueError):
            index.add_document("d1", {"x": 1})

    def test_empty_document_counts_toward_collection(self):
        idx = InvertedIndex()
        idx.add_document("d", {})
        assert idx.document_count == 1
        assert idx.vocabulary_size == 0

    def test_negative_tf_rejected(self):
        with pytest.raises(ValueError):
            Posting("d", 0)

    def test_terms_listing(self, index):
        assert set(index.terms()) == {"apple", "pear", "plum"}
