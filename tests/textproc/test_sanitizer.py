"""Unit tests for repro.textproc.sanitizer."""

import pytest

from repro.textproc.sanitizer import (
    extract_urls,
    sanitize,
    strip_control_chars,
    strip_markup,
    strip_social_artifacts,
    strip_urls,
)


class TestStripUrls:
    def test_removes_http_url(self):
        assert strip_urls("see http://example.com/x now").split() == ["see", "now"]

    def test_removes_https_url(self):
        assert "https" not in strip_urls("go https://a.b/c?d=1")

    def test_removes_www_url(self):
        assert "www" not in strip_urls("visit www.example.com today")

    def test_keeps_plain_text(self):
        assert strip_urls("no links here") == "no links here"


class TestExtractUrls:
    def test_finds_urls_in_order(self):
        text = "a http://one.example b https://two.example/c"
        assert extract_urls(text) == ["http://one.example", "https://two.example/c"]

    def test_empty_for_plain_text(self):
        assert extract_urls("nothing to see") == []


class TestStripMarkup:
    def test_removes_tags(self):
        assert strip_markup("<b>bold</b> text").split() == ["bold", "text"]

    def test_decodes_entities(self):
        assert strip_markup("fish &amp; chips") == "fish & chips"

    def test_leaves_angle_free_text(self):
        assert strip_markup("a < b and c") == "a < b and c"


class TestStripSocialArtifacts:
    def test_removes_mentions(self):
        assert "@bob" not in strip_social_artifacts("hi @bob how are you")

    def test_unwraps_hashtags(self):
        assert strip_social_artifacts("#swimming is fun") == "swimming is fun"

    def test_removes_retweet_marker(self):
        assert not strip_social_artifacts("RT : hello").startswith("RT")

    def test_email_like_text_is_kept(self):
        # the @ in an email is preceded by a word char: not a mention
        assert "user@example" in strip_social_artifacts("mail user@example today")


class TestStripControlChars:
    def test_removes_control_characters(self):
        assert strip_control_chars("a\x00b\x07c") == "abc"

    def test_keeps_newline_tab_space(self):
        assert strip_control_chars("a\tb\nc d") == "a\tb\nc d"


class TestSanitize:
    def test_full_chain(self):
        raw = "RT @bob: <b>Great</b> #freestyle gold http://t.co/x !"
        assert sanitize(raw) == "Great freestyle gold !"

    def test_collapses_whitespace(self):
        assert sanitize("a    b\n\n  c") == "a b c"

    def test_empty_input(self):
        assert sanitize("") == ""

    def test_idempotent(self):
        once = sanitize("RT @a #b <i>c</i> http://d.e")
        assert sanitize(once) == once

    @pytest.mark.parametrize("junk", ["<script>x</script>", "@m", "#t", "http://u.v"])
    def test_single_artifacts(self, junk):
        cleaned = sanitize(f"hello {junk} world")
        assert "hello" in cleaned and "world" in cleaned
