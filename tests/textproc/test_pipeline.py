"""Unit tests for the composed text pipeline."""

import pytest

from repro.textproc.pipeline import AnalyzedText, TextPipeline


@pytest.fixture(scope="module")
def pipe():
    return TextPipeline()


class TestTextPipeline:
    def test_english_flow(self, pipe):
        out = pipe.analyze("Just finished 30min freestyle training at the swimming pool!")
        assert out.language == "en"
        assert out.is_english
        assert "swim" in out.terms  # stemmed
        assert "the" not in out.terms  # stop word removed
        assert "the" in out.tokens  # tokens keep everything

    def test_language_override_skips_identification(self, pipe):
        out = pipe.analyze("xyzzy plugh", language="en")
        assert out.language == "en"

    def test_non_english_not_stemmed(self, pipe):
        out = pipe.analyze(
            "questa e una bella giornata per andare in piscina con gli amici oggi"
        )
        assert out.language == "it"
        assert not out.is_english
        # Italian stop words removed, content words unstemmed
        assert "giornata" in out.terms
        assert "una" not in out.terms

    def test_sanitization_applied(self, pipe):
        out = pipe.analyze("RT @bob check http://x.y #swimming is the best today")
        assert "http" not in out.clean_text
        assert "bob" not in out.clean_text
        assert "swim" in out.terms

    def test_empty_text(self, pipe):
        out = pipe.analyze("")
        assert out.terms == ()
        assert out.tokens == ()

    def test_result_is_frozen(self, pipe):
        out = pipe.analyze("hello world")
        with pytest.raises(AttributeError):
            out.language = "fr"

    def test_terms_subset_of_token_stems(self, pipe):
        out = pipe.analyze("The swimmers were training for the olympic games")
        assert len(out.terms) <= len(out.tokens)

    def test_analyzed_text_dataclass(self):
        at = AnalyzedText(language="en", clean_text="x", tokens=("x",), terms=("x",))
        assert at.is_english
