"""Unit tests for repro.textproc.tokenizer."""

import pytest

from repro.textproc.tokenizer import ngrams, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Hello WORLD") == ["hello", "world"]

    def test_splits_on_punctuation(self):
        assert tokenize("a,b;c.d!e?") == ["a", "b", "c", "d", "e"]

    def test_keeps_digits(self):
        assert tokenize("diablo 3 rocks") == ["diablo", "3", "rocks"]

    def test_clitic_apostrophe_keeps_head(self):
        assert tokenize("don't isn't we're") == ["don", "isn", "we"]

    def test_non_clitic_apostrophe_joined(self):
        # "o'brien" — 'brien' is not a clitic, so the parts are joined
        assert tokenize("o'brien") == ["obrien"]

    def test_min_length_filter(self):
        assert tokenize("a bb ccc", min_length=2) == ["bb", "ccc"]

    def test_max_length_filter(self):
        assert tokenize("ok " + "x" * 100, max_length=10) == ["ok"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_underscore_is_separator(self):
        assert tokenize("snake_case") == ["snake", "case"]

    def test_unicode_words(self):
        assert tokenize("caffè bar") == ["caffè", "bar"]


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_unigrams(self):
        assert ngrams(["a", "b"], 1) == [("a",), ("b",)]

    def test_n_longer_than_input(self):
        assert ngrams(["a"], 3) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)
