"""Unit tests for the Porter stemmer against published examples."""

import pytest

from repro.textproc.stemmer import PorterStemmer


@pytest.fixture(scope="module")
def stem():
    return PorterStemmer().stem


# examples taken from Porter's 1980 paper and its reference vocabulary
PORTER_EXAMPLES = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", PORTER_EXAMPLES)
def test_porter_published_examples(stem, word, expected):
    assert stem(word) == expected


class TestStemmerBehaviour:
    def test_short_words_untouched(self, stem):
        assert stem("is") == "is"
        assert stem("at") == "at"

    def test_swimming(self, stem):
        assert stem("swimming") == "swim"

    def test_swimmers(self, stem):
        assert stem("swimmers") == "swimmer"

    def test_idempotent_on_many_words(self, stem):
        words = ["relational", "swimming", "happiness", "engineering", "libraries"]
        for w in words:
            once = stem(w)
            assert stem(once) == once or len(stem(once)) <= len(once)

    def test_stem_is_never_longer(self, stem):
        for w in ["nationalization", "generalization", "characteristically"]:
            assert len(stem(w)) <= len(w)
