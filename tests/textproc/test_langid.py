"""Unit tests for the character-n-gram language identifier."""

import pytest

from repro.textproc.langid import LanguageIdentifier, LanguageProfile


@pytest.fixture(scope="module")
def lid():
    return LanguageIdentifier()


class TestIdentify:
    def test_english_sentence(self, lid):
        text = "just finished thirty minutes of freestyle training at the pool"
        assert lid.identify(text) == "en"

    def test_italian_sentence(self, lid):
        text = "questa e una bella giornata per andare in piscina con gli amici"
        assert lid.identify(text) == "it"

    def test_spanish_sentence(self, lid):
        text = "hoy es un dia precioso para pasear por el centro con amigos"
        assert lid.identify(text) == "es"

    def test_french_sentence(self, lid):
        text = "le renard saute par dessus le chien et nous cherchons des reponses"
        assert lid.identify(text) == "fr"

    def test_german_sentence(self, lid):
        text = "der schnelle fuchs springt uber den faulen hund und alle menschen wissen das"
        assert lid.identify(text) == "de"

    def test_short_text_unknown(self, lid):
        assert lid.identify("ok") == LanguageIdentifier.UNKNOWN

    def test_empty_unknown(self, lid):
        assert lid.identify("") == LanguageIdentifier.UNKNOWN

    def test_numbers_only_unknown(self, lid):
        assert lid.identify("123 456 789 000 111 222") == LanguageIdentifier.UNKNOWN

    def test_latinate_english_content_words(self, lid):
        # professional vocabulary must not be mistaken for Romance
        # languages (regression: LinkedIn profiles were classified it/fr)
        text = (
            "the senior consultant was responsible for enterprise solutions and"
            " led the professional development of the industry team"
        )
        assert lid.identify(text) == "en"


class TestScores:
    def test_scores_cover_all_languages(self, lid):
        scores = lid.scores("hello world this is a test of the system")
        assert set(scores) == set(lid.languages)

    def test_scores_in_unit_interval(self, lid):
        for value in lid.scores("the quick brown fox jumps today").values():
            assert 0.0 <= value <= 1.0

    def test_english_wins_on_english(self, lid):
        scores = lid.scores("we are going to the swimming pool with friends today")
        assert max(scores, key=scores.get) == "en"

    def test_empty_text_all_zero(self, lid):
        assert all(v == 0.0 for v in lid.scores("").values())


class TestLanguageProfile:
    def test_from_text_ranks(self):
        profile = LanguageProfile.from_text("xx", "aaa aaa bbb")
        assert profile.language == "xx"
        assert len(profile.ranks) > 0

    def test_distance_zero_for_identical(self):
        profile = LanguageProfile.from_text("xx", "the cat sat on the mat")
        from repro.textproc.langid import _char_ngrams

        doc = [g for g, _ in _char_ngrams("the cat sat on the mat").most_common(300)]
        assert profile.distance(doc) == 0

    def test_distance_positive_for_different(self):
        profile = LanguageProfile.from_text("xx", "the cat sat on the mat")
        from repro.textproc.langid import _char_ngrams

        doc = [g for g, _ in _char_ngrams("zzz qqq www").most_common(300)]
        assert profile.distance(doc) > 0

    def test_custom_profiles(self):
        lid = LanguageIdentifier({"aa": "aaaa aaaa aaaa", "bb": "bbbb bbbb bbbb"})
        assert lid.identify("aaaa aaaa aaaa aaaa aaaa aaaa aaaa") == "aa"
