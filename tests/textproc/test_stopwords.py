"""Unit tests for repro.textproc.stopwords."""

from repro.textproc.stopwords import stopwords_for, supported_languages


class TestStopwords:
    def test_english_common_words(self):
        en = stopwords_for("en")
        for w in ("the", "and", "of", "is", "a"):
            assert w in en

    def test_italian_common_words(self):
        it = stopwords_for("it")
        for w in ("il", "la", "di", "che"):
            assert w in it

    def test_unknown_language_empty(self):
        assert stopwords_for("zz") == frozenset()

    def test_supported_languages_sorted(self):
        langs = supported_languages()
        assert list(langs) == sorted(langs)
        assert {"en", "it", "es", "fr", "de"} <= set(langs)

    def test_sets_are_disjoint_enough(self):
        # languages share some function words, but each list must be
        # mostly its own
        en, it = stopwords_for("en"), stopwords_for("it")
        assert len(en & it) < 0.2 * min(len(en), len(it))

    def test_returns_frozenset(self):
        assert isinstance(stopwords_for("en"), frozenset)
