"""Unit tests for the retrieval metrics (paper Sec. 3.2)."""

import math

import pytest

from repro.evaluation.metrics import (
    average_precision,
    dcg,
    eleven_point_precision,
    f1_score,
    ideal_dcg,
    mean,
    ndcg,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)


class TestPrecisionRecall:
    def test_precision_at_k(self):
        assert precision_at_k(["a", "b", "c"], {"a", "c"}, 2) == 0.5
        assert precision_at_k(["a", "b", "c"], {"a", "c"}, 3) == pytest.approx(2 / 3)

    def test_precision_counts_padding(self):
        # k beyond the ranking length divides by k (missing = misses)
        assert precision_at_k(["a"], {"a"}, 4) == 0.25

    def test_recall_at_k(self):
        assert recall_at_k(["a", "b"], {"a", "z"}, 2) == 0.5
        assert recall_at_k(["a", "z"], {"a", "z"}, 2) == 1.0

    def test_recall_empty_relevant(self):
        assert recall_at_k(["a"], set(), 1) == 0.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            precision_at_k(["a"], {"a"}, 0)
        with pytest.raises(ValueError):
            recall_at_k(["a"], {"a"}, -1)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision(["a", "b", "x"], {"a", "b"}) == 1.0

    def test_interleaved(self):
        # hits at ranks 1 and 3: (1/1 + 2/3) / 2
        assert average_precision(["a", "x", "b"], {"a", "b"}) == pytest.approx(5 / 6)

    def test_missing_relevant_penalized(self):
        assert average_precision(["a"], {"a", "b"}) == 0.5

    def test_no_relevant(self):
        assert average_precision(["a"], set()) == 0.0

    def test_nothing_retrieved(self):
        assert average_precision([], {"a"}) == 0.0


class TestReciprocalRank:
    def test_first(self):
        assert reciprocal_rank(["a", "b"], {"a"}) == 1.0

    def test_third(self):
        assert reciprocal_rank(["x", "y", "a"], {"a"}) == pytest.approx(1 / 3)

    def test_absent(self):
        assert reciprocal_rank(["x"], {"a"}) == 0.0


class TestDcg:
    def test_single_item(self):
        # gain 2^3-1 = 7, discount log2(2) = 1
        assert dcg(["a"], {"a": 3.0}) == pytest.approx(7.0)

    def test_discounting(self):
        value = dcg(["a", "b"], {"a": 1.0, "b": 1.0})
        assert value == pytest.approx(1.0 + 1.0 / math.log2(3))

    def test_cutoff(self):
        assert dcg(["x", "a"], {"a": 2.0}, k=1) == 0.0

    def test_ideal_reorders(self):
        gains = {"a": 1.0, "b": 3.0}
        assert ideal_dcg(gains) == pytest.approx(dcg(["b", "a"], gains))

    def test_likert_scale_magnitude(self):
        # 20 users with likert 5-7 produce DCG in the paper's range
        gains = {f"u{i}": 5.0 + (i % 3) for i in range(20)}
        ranking = sorted(gains, key=gains.get, reverse=True)
        assert 100 < dcg(ranking, gains, 20) < 800

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            dcg(["a"], {"a": 1.0}, k=0)


class TestNdcg:
    def test_perfect_is_one(self):
        assert ndcg(["b", "a"], {"a": 1.0, "b": 3.0}) == 1.0

    def test_reversed_less_than_one(self):
        assert ndcg(["a", "b"], {"a": 1.0, "b": 3.0}) < 1.0

    def test_no_gains(self):
        assert ndcg(["a"], {}) == 0.0

    def test_bounded(self):
        value = ndcg(["x", "a", "y", "b"], {"a": 2.0, "b": 7.0})
        assert 0.0 < value < 1.0

    def test_at_k(self):
        full = ndcg(["x", "a"], {"a": 1.0})
        at_1 = ndcg(["x", "a"], {"a": 1.0}, k=1)
        assert at_1 == 0.0 < full


class TestElevenPoint:
    def test_perfect_curve_flat_one(self):
        curve = eleven_point_precision(["a", "b"], {"a", "b"})
        assert curve == tuple([1.0] * 11)

    def test_eleven_values(self):
        curve = eleven_point_precision(["a", "x", "b"], {"a", "b"})
        assert len(curve) == 11

    def test_monotone_nonincreasing(self):
        curve = eleven_point_precision(
            ["a", "x", "b", "y", "c"], {"a", "b", "c"}
        )
        assert all(curve[i] >= curve[i + 1] for i in range(10))

    def test_zero_at_unreachable_recall(self):
        curve = eleven_point_precision(["a"], {"a", "b"})
        assert curve[10] == 0.0  # recall 1.0 never reached
        assert curve[0] == 1.0

    def test_empty_relevant(self):
        assert eleven_point_precision(["a"], set()) == tuple([0.0] * 11)


class TestF1:
    def test_balanced(self):
        assert f1_score(0.5, 0.5) == 0.5

    def test_zero(self):
        assert f1_score(0.0, 0.0) == 0.0

    def test_harmonic(self):
        assert f1_score(1.0, 0.5) == pytest.approx(2 / 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            f1_score(-0.1, 0.5)


class TestMean:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty(self):
        assert mean([]) == 0.0
