"""Tests for the experiment runner over the TINY dataset."""

import pytest

from repro.core.config import FinderConfig
from repro.evaluation.runner import EvaluationResult, QueryOutcome, evaluate_finder
from repro.socialgraph.metamodel import Platform


@pytest.fixture(scope="module")
def result(tiny_context):
    return tiny_context.runner.run(None, FinderConfig())


class TestRun:
    def test_one_outcome_per_query(self, result, tiny_context):
        assert len(result.outcomes) == len(tiny_context.dataset.queries)

    def test_rankings_contain_only_candidates(self, result, tiny_context):
        person_ids = set(tiny_context.dataset.person_ids)
        for outcome in result.outcomes:
            assert set(outcome.ranking) <= person_ids

    def test_no_duplicate_candidates_in_ranking(self, result):
        for outcome in result.outcomes:
            assert len(outcome.ranking) == len(set(outcome.ranking))

    def test_summary_bounds(self, result):
        summary = result.summary()
        for value in summary.as_row():
            assert 0.0 <= value <= 1.0

    def test_matched_resources_recorded(self, result):
        assert any(o.matched_resources > 0 for o in result.outcomes)

    def test_finder_cache_reused(self, tiny_context):
        f1 = tiny_context.runner.finder(Platform.TWITTER, FinderConfig())
        f2 = tiny_context.runner.finder(Platform.TWITTER, FinderConfig(alpha=0.2))
        assert f1 is f2  # alpha does not affect the index
        f3 = tiny_context.runner.finder(Platform.TWITTER, FinderConfig(max_distance=1))
        assert f3 is not f1

    def test_subset_of_queries(self, tiny_context):
        queries = tiny_context.dataset.queries[:3]
        result = tiny_context.runner.run(None, FinderConfig(), queries=queries)
        assert len(result.outcomes) == 3


class TestEvaluateFinder:
    def test_matched_resources_is_real_match_count(self, tiny_context):
        """evaluate_finder used to hardcode matched_resources=0; it must
        report the finder's actual RR size, agreeing with runner.run."""
        dataset = tiny_context.dataset
        finder = tiny_context.runner.finder(None, FinderConfig())
        queries = dataset.queries[:5]
        result = evaluate_finder(dataset, finder, queries)
        expected = tiny_context.runner.run(None, FinderConfig(), queries=queries)
        assert [o.matched_resources for o in result.outcomes] == [
            o.matched_resources for o in expected.outcomes
        ]
        assert any(o.matched_resources > 0 for o in result.outcomes)

    def test_ranking_only_finder_reports_retrieved_size(self, tiny_context):
        """Baselines exposing only find_experts report the ranking size."""

        class RankingOnly:
            def __init__(self, inner):
                self._inner = inner

            def find_experts(self, need):
                return self._inner.find_experts(need)

        dataset = tiny_context.dataset
        finder = tiny_context.runner.finder(None, FinderConfig())
        queries = dataset.queries[:3]
        result = evaluate_finder(dataset, RankingOnly(finder), queries)
        assert [o.matched_resources for o in result.outcomes] == [
            len(o.ranking) for o in result.outcomes
        ]


class TestEvaluationResult:
    def test_by_domain_partition(self, result):
        by_domain = result.by_domain()
        total = sum(len(r.outcomes) for r in by_domain.values())
        assert total == len(result.outcomes)
        assert set(by_domain) == {o.need.domain for o in result.outcomes}

    def test_eleven_point_curve_shape(self, result):
        curve = result.eleven_point_curve()
        assert len(curve) == 11
        assert all(0.0 <= v <= 1.0 for v in curve)

    def test_dcg_curve_monotone(self, result):
        curve = result.dcg_curve((5, 10, 15, 20))
        assert list(curve) == sorted(curve)

    def test_expert_deltas_length(self, result):
        assert len(result.expert_deltas()) == len(result.outcomes)

    def test_user_f1_bounds(self, result, tiny_context):
        f1 = result.user_f1(tiny_context.dataset.person_ids)
        assert set(f1) == set(tiny_context.dataset.person_ids)
        assert all(0.0 <= v <= 1.0 for v in f1.values())

    def test_empty_result(self):
        empty = EvaluationResult(outcomes=[])
        assert empty.summary().map == 0.0
        assert empty.eleven_point_curve() == tuple([0.0] * 11)


class TestQueryOutcome:
    def test_retrieved_delta(self, result):
        outcome = result.outcomes[0]
        assert outcome.retrieved_delta == len(outcome.ranking) - len(outcome.relevant)

    def test_metric_properties_consistent(self, result):
        from repro.evaluation.metrics import average_precision

        outcome = result.outcomes[0]
        assert outcome.ap == average_precision(outcome.ranking, outcome.relevant)
