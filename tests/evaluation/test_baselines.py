"""Unit tests for the random baseline."""

import pytest

from repro.evaluation.baselines import random_baseline, random_curves
from repro.synthetic.ground_truth import GroundTruth
from repro.synthetic.population import generate_population
from repro.synthetic.queries import paper_queries


@pytest.fixture(scope="module")
def setup():
    people = generate_population(seed=7, size=40)
    return [p.person_id for p in people], paper_queries(), GroundTruth(people)


class TestRandomBaseline:
    def test_metrics_in_unit_interval(self, setup):
        ids, queries, truth = setup
        summary = random_baseline(ids, queries, truth, seed=1)
        for value in summary.as_row():
            assert 0.0 <= value <= 1.0

    def test_deterministic_per_seed(self, setup):
        ids, queries, truth = setup
        a = random_baseline(ids, queries, truth, seed=5)
        b = random_baseline(ids, queries, truth, seed=5)
        assert a == b

    def test_seed_varies_result(self, setup):
        ids, queries, truth = setup
        a = random_baseline(ids, queries, truth, seed=5)
        b = random_baseline(ids, queries, truth, seed=6)
        assert a != b

    def test_map_near_expert_density(self, setup):
        # random MAP over 20-of-40 samples with ~17 experts per domain
        # should hover near the paper's 0.26 region
        ids, queries, truth = setup
        summary = random_baseline(ids, queries, truth, seed=1)
        assert 0.15 < summary.map < 0.4

    def test_sample_capped_at_population(self, setup):
        ids, queries, truth = setup
        summary = random_baseline(ids[:5], queries, truth, sample_size=20, seed=1)
        assert summary.map >= 0.0  # no crash, valid result

    def test_validation(self, setup):
        ids, queries, truth = setup
        with pytest.raises(ValueError):
            random_baseline(ids, queries, truth, runs=0)
        with pytest.raises(ValueError):
            random_baseline(ids, queries, truth, sample_size=0)


class TestRandomCurves:
    def test_shapes(self, setup):
        ids, queries, truth = setup
        eleven, dcg_curve = random_curves(ids, queries, truth, seed=1)
        assert len(eleven) == 11
        assert len(dcg_curve) == 4

    def test_dcg_monotone_in_cutoff(self, setup):
        ids, queries, truth = setup
        _, dcg_curve = random_curves(ids, queries, truth, seed=1)
        assert list(dcg_curve) == sorted(dcg_curve)
