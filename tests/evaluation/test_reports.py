"""Unit tests for report rendering."""

from repro.evaluation.reports import curve_series, domain_table, metrics_table
from repro.evaluation.runner import MetricsSummary


def _summary(v: float) -> MetricsSummary:
    return MetricsSummary(map=v, mrr=v, ndcg=v, ndcg_at_10=v)


class TestMetricsTable:
    def test_contains_rows_and_header(self):
        text = metrics_table({"Random": _summary(0.2), "TW d2": _summary(0.5)})
        assert "Random" in text and "TW d2" in text
        assert "MAP" in text and "NDCG@10" in text

    def test_best_marked(self):
        text = metrics_table({"low": _summary(0.2), "high": _summary(0.5)})
        high_line = next(l for l in text.splitlines() if l.startswith("high"))
        assert "*" in high_line

    def test_title(self):
        assert metrics_table({"a": _summary(0.1)}, title="T3").startswith("T3")

    def test_empty(self):
        assert metrics_table({}, title="x") == "x"


class TestCurveSeries:
    def test_layout(self):
        text = curve_series(
            {"d1": [0.1, 0.2], "d2": [0.3, 0.4]}, x_labels=["5", "10"], title="DCG"
        )
        lines = text.splitlines()
        assert lines[0] == "DCG"
        assert "d1" in lines[2] and "0.1000" in lines[2]


class TestDomainTable:
    def test_layout(self):
        rows = {
            "sport": {
                "All": {0: _summary(0.1), 1: _summary(0.2), 2: _summary(0.3)},
                "FB": {0: _summary(0.1), 1: _summary(0.2), 2: _summary(0.3)},
                "TW": {0: _summary(0.1), 1: _summary(0.2), 2: _summary(0.3)},
                "LI": {0: _summary(0.1), 1: _summary(0.2), 2: _summary(0.3)},
            }
        }
        text = domain_table(rows, metric="map")
        assert "sport" in text
        assert text.count("sport") == 3  # one row per distance

    def test_missing_cell_nan(self):
        rows = {"sport": {"All": {0: _summary(0.1)}, "FB": {}, "TW": {}, "LI": {}}}
        text = domain_table(rows, metric="map", distances=(0,))
        assert "nan" in text
