"""Tests for paired significance testing."""

import pytest

from repro.core.config import FinderConfig
from repro.evaluation.significance import (
    SignificanceReport,
    compare_results,
    paired_permutation_test,
)


class TestPermutationTest:
    def test_identical_samples_p_one(self):
        assert paired_permutation_test([0.5, 0.4], [0.5, 0.4]) == 1.0

    def test_consistent_difference_significant(self):
        a = [0.9] * 12
        b = [0.1] * 12
        assert paired_permutation_test(a, b) < 0.01

    def test_symmetric(self):
        a = [0.8, 0.6, 0.9, 0.4, 0.7, 0.5]
        b = [0.5, 0.5, 0.6, 0.6, 0.4, 0.2]
        assert paired_permutation_test(a, b) == pytest.approx(
            paired_permutation_test(b, a)
        )

    def test_p_value_bounds(self):
        a = [0.1, 0.9, 0.3, 0.7, 0.2]
        b = [0.2, 0.8, 0.1, 0.9, 0.5]
        p = paired_permutation_test(a, b)
        assert 0.0 < p <= 1.0

    def test_single_noisy_pair_not_significant(self):
        assert paired_permutation_test([0.9], [0.1]) == 1.0  # sign flip covers it

    def test_monte_carlo_path(self):
        a = [0.9, 0.8] * 10  # 20 informative pairs → Monte-Carlo
        b = [0.1, 0.2] * 10
        p = paired_permutation_test(a, b, rounds=2000, seed=3)
        assert p < 0.05

    def test_monte_carlo_deterministic(self):
        a = [0.9, 0.1, 0.8, 0.3] * 5
        b = [0.5, 0.2, 0.6, 0.4] * 5
        p1 = paired_permutation_test(a, b, rounds=500, seed=9)
        p2 = paired_permutation_test(a, b, rounds=500, seed=9)
        assert p1 == p2

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_permutation_test([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            paired_permutation_test([], [])


class TestCompareResults:
    def test_distance2_beats_distance0_significantly(self, tiny_context):
        d0 = tiny_context.runner.run(None, FinderConfig(max_distance=0))
        d2 = tiny_context.runner.run(None, FinderConfig(max_distance=2))
        report = compare_results(d2, d0, metric="ap")
        assert report.mean_a > report.mean_b
        assert report.significant(0.05)

    def test_self_comparison_not_significant(self, tiny_context):
        result = tiny_context.runner.run(None, FinderConfig())
        report = compare_results(result, result)
        assert report.p_value == 1.0
        assert not report.significant()

    def test_mismatched_queries_rejected(self, tiny_context):
        full = tiny_context.runner.run(None, FinderConfig())
        partial = tiny_context.runner.run(
            None, FinderConfig(), queries=tiny_context.dataset.queries[:5]
        )
        with pytest.raises(ValueError):
            compare_results(full, partial)

    def test_report_fields(self):
        report = SignificanceReport(metric="ap", mean_a=0.6, mean_b=0.4, p_value=0.01)
        assert report.difference == pytest.approx(0.2)
        assert report.significant()
