"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def _generation_dir(snapshot_dir):
    """The generation a v3 snapshot's CURRENT file points at."""
    lines = (snapshot_dir / "CURRENT").read_text(encoding="utf-8").splitlines()
    return snapshot_dir / lines[1]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "hello"])
        assert args.text == "hello"
        assert args.platform == "all"
        assert args.alpha == 0.6
        assert args.distance == 2

    def test_dataset_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset"])


class TestCommands:
    def test_query_finds_experts(self, capsys):
        code = main(["query", "best freestyle swimmer", "--scale", "tiny", "--top-k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert "person:" in out

    def test_query_no_match(self, capsys):
        code = main(["query", "zzzz qqqq xxxx", "--scale", "tiny"])
        assert code == 1
        assert "no candidate" in capsys.readouterr().out

    def test_query_platform_selection(self, capsys):
        code = main(
            ["query", "famous european football teams", "--scale", "tiny",
             "--platform", "tw", "--distance", "1"]
        )
        assert code in (0, 1)  # valid run either way

    def test_info(self, capsys):
        assert main(["info", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "candidates: 12" in out
        assert "twitter" in out

    def test_dataset_save_then_use(self, tmp_path, capsys):
        out_dir = tmp_path / "ds"
        assert main(["dataset", "--scale", "tiny", "--out", str(out_dir)]) == 0
        assert (out_dir / "meta.jsonl").exists()
        capsys.readouterr()
        assert main(["info", "--dataset", str(out_dir)]) == 0
        assert "candidates: 12" in capsys.readouterr().out

    def test_index_then_warm_query_and_serve_bench(self, tmp_path, capsys):
        snap = tmp_path / "snap"
        assert main(["index", "--scale", "tiny", "--out", str(snap)]) == 0
        assert "indexed" in capsys.readouterr().out
        assert (snap / "CURRENT").exists()
        assert (_generation_dir(snap) / "meta.jsonl").exists()

        code = main(
            ["query", "best freestyle swimmer", "--scale", "tiny",
             "--snapshot", str(snap), "--top-k", "3"]
        )
        assert code == 0
        warm_out = capsys.readouterr().out
        code = main(["query", "best freestyle swimmer", "--scale", "tiny", "--top-k", "3"])
        assert code == 0
        cold_out = capsys.readouterr().out
        assert warm_out == cold_out  # snapshot serves identical rankings

        code = main(
            ["serve-bench", "--scale", "tiny", "--snapshot", str(snap),
             "--rounds", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hit rate" in out and "p95" in out

    def test_index_parallel_build_reports_stages(self, tmp_path, capsys):
        snap = tmp_path / "snap"
        code = main(
            ["index", "--scale", "tiny", "--cold", "--workers", "2",
             "--chunk-size", "64", "--out", str(snap)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "build stages:" in out
        assert "workers=2" in out
        assert (snap / "CURRENT").exists()

    def test_index_jsonl_format_writes_flat_layout(self, tmp_path, capsys):
        snap = tmp_path / "snap"
        code = main(
            ["index", "--scale", "tiny", "--snapshot-format", "jsonl",
             "--out", str(snap)]
        )
        assert code == 0
        assert (snap / "meta.jsonl").exists()
        assert (snap / "term_index.jsonl.gz").exists()
        assert not (snap / "CURRENT").exists()
        capsys.readouterr()
        code = main(
            ["query", "best freestyle swimmer", "--scale", "tiny",
             "--snapshot", str(snap), "--top-k", "3"]
        )
        assert code == 0

    def test_experiments_subset(self, capsys):
        code = main(["experiments", "--scale", "tiny", "--only", "fig5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 5a" in out

    def test_experiments_unknown_name(self, capsys):
        code = main(["experiments", "--scale", "tiny", "--only", "nope"])
        assert code == 2
        assert "unknown experiments" in capsys.readouterr().err


class TestSegmentedCommands:
    def test_index_parser_accepts_segment_flags(self):
        args = build_parser().parse_args(
            ["index", "--scale", "tiny", "--index-mode", "segmented",
             "--seal-threshold", "8", "--compact", "--out", "x"]
        )
        assert args.index_mode == "segmented"
        assert args.seal_threshold == 8
        assert args.compact

    def test_index_segmented_snapshot_and_serve_bench(self, tmp_path, capsys):
        snap = tmp_path / "seg"
        code = main(
            ["index", "--scale", "tiny", "--index-mode", "segmented",
             "--out", str(snap)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "segments: 1 live" in out
        assert (_generation_dir(snap) / "segments.jsonl").exists()

        # the segmented snapshot answers queries identically to a cold
        # monolithic build
        code = main(
            ["query", "best freestyle swimmer", "--scale", "tiny",
             "--snapshot", str(snap), "--top-k", "3"]
        )
        assert code == 0
        seg_out = capsys.readouterr().out
        code = main(
            ["query", "best freestyle swimmer", "--scale", "tiny", "--top-k", "3"]
        )
        assert code == 0
        assert capsys.readouterr().out == seg_out

        code = main(
            ["serve-bench", "--scale", "tiny", "--snapshot", str(snap),
             "--rounds", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "segments: 1 live" in out
        assert "cache survivals" in out

    def test_index_compact_merges_multi_segment_snapshot(
        self, tmp_path, capsys, tiny_dataset
    ):
        from repro.core.expert_finder import ExpertFinder

        snap = tmp_path / "seg"
        assert main(
            ["index", "--scale", "tiny", "--index-mode", "segmented",
             "--out", str(snap)]
        ) == 0
        capsys.readouterr()

        # grow the snapshot into several segments plus a buffered tail
        finder = ExpertFinder.load(snap, tiny_dataset.analyzer)
        candidate = next(iter(finder.evidence_counts))
        finder.observe(
            "cli:s1", "an incredibly rare zorpify gadget review", [(candidate, 1)]
        )
        finder.segmented_index.seal()
        finder.observe(
            "cli:s2", "another zorpify gadget deep dive", [(candidate, 1)]
        )
        grown = tmp_path / "grown"
        finder.save(grown)
        stats = finder.index_stats
        assert stats.segments >= 2 and stats.buffered == 1

        optimized = tmp_path / "optimized"
        assert main(
            ["index", "--scale", "tiny", "--snapshot", str(grown),
             "--compact", "--out", str(optimized)]
        ) == 0
        out = capsys.readouterr().out
        assert f"compacted {stats.segments} segment(s) + 1 buffered" in out
        assert "→ 1 segment(s)" in out
        assert "segments: 1 live" in out

        # the optimized snapshot round-trips and ranks identically
        for need in ("zorpify gadget", "best freestyle swimmer"):
            code = main(
                ["query", need, "--scale", "tiny",
                 "--snapshot", str(grown), "--top-k", "5"]
            )
            grown_out = capsys.readouterr().out
            assert code in (0, 1)
            assert main(
                ["query", need, "--scale", "tiny",
                 "--snapshot", str(optimized), "--top-k", "5"]
            ) == code
            assert capsys.readouterr().out == grown_out

    def test_compact_requires_segmented_finder(self, tmp_path, capsys):
        snap = tmp_path / "mono"
        assert main(["index", "--scale", "tiny", "--out", str(snap)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="segmented"):
            main(
                ["index", "--scale", "tiny", "--snapshot", str(snap),
                 "--compact", "--out", str(tmp_path / "x")]
            )
