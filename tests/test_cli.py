"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "hello"])
        assert args.text == "hello"
        assert args.platform == "all"
        assert args.alpha == 0.6
        assert args.distance == 2

    def test_dataset_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset"])


class TestCommands:
    def test_query_finds_experts(self, capsys):
        code = main(["query", "best freestyle swimmer", "--scale", "tiny", "--top-k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert "person:" in out

    def test_query_no_match(self, capsys):
        code = main(["query", "zzzz qqqq xxxx", "--scale", "tiny"])
        assert code == 1
        assert "no candidate" in capsys.readouterr().out

    def test_query_platform_selection(self, capsys):
        code = main(
            ["query", "famous european football teams", "--scale", "tiny",
             "--platform", "tw", "--distance", "1"]
        )
        assert code in (0, 1)  # valid run either way

    def test_info(self, capsys):
        assert main(["info", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "candidates: 12" in out
        assert "twitter" in out

    def test_dataset_save_then_use(self, tmp_path, capsys):
        out_dir = tmp_path / "ds"
        assert main(["dataset", "--scale", "tiny", "--out", str(out_dir)]) == 0
        assert (out_dir / "meta.jsonl").exists()
        capsys.readouterr()
        assert main(["info", "--dataset", str(out_dir)]) == 0
        assert "candidates: 12" in capsys.readouterr().out

    def test_index_then_warm_query_and_serve_bench(self, tmp_path, capsys):
        snap = tmp_path / "snap"
        assert main(["index", "--scale", "tiny", "--out", str(snap)]) == 0
        assert "indexed" in capsys.readouterr().out
        assert (snap / "meta.jsonl").exists()

        code = main(
            ["query", "best freestyle swimmer", "--scale", "tiny",
             "--snapshot", str(snap), "--top-k", "3"]
        )
        assert code == 0
        warm_out = capsys.readouterr().out
        code = main(["query", "best freestyle swimmer", "--scale", "tiny", "--top-k", "3"])
        assert code == 0
        cold_out = capsys.readouterr().out
        assert warm_out == cold_out  # snapshot serves identical rankings

        code = main(
            ["serve-bench", "--scale", "tiny", "--snapshot", str(snap),
             "--rounds", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hit rate" in out and "p95" in out

    def test_index_parallel_build_reports_stages(self, tmp_path, capsys):
        snap = tmp_path / "snap"
        code = main(
            ["index", "--scale", "tiny", "--cold", "--workers", "2",
             "--chunk-size", "64", "--out", str(snap)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "build stages:" in out
        assert "workers=2" in out
        assert (snap / "meta.jsonl").exists()

    def test_experiments_subset(self, capsys):
        code = main(["experiments", "--scale", "tiny", "--only", "fig5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 5a" in out

    def test_experiments_unknown_name(self, capsys):
        code = main(["experiments", "--scale", "tiny", "--only", "nope"])
        assert code == 2
        assert "unknown experiments" in capsys.readouterr().err
