"""Unit tests for the social meta-model (paper Fig. 2)."""

import pytest

from repro.socialgraph.metamodel import (
    Annotation,
    Platform,
    RelationKind,
    Resource,
    ResourceContainer,
    SocialRelation,
    Url,
    UserProfile,
)


class TestPlatform:
    def test_short_codes(self):
        assert Platform.FACEBOOK.short == "FB"
        assert Platform.TWITTER.short == "TW"
        assert Platform.LINKEDIN.short == "LI"

    def test_three_platforms(self):
        assert len(Platform) == 3


class TestRelationKind:
    def test_social_kinds(self):
        assert RelationKind.FRIENDSHIP.is_social
        assert RelationKind.FOLLOWS.is_social

    def test_non_social_kinds(self):
        for kind in (RelationKind.OWNS, RelationKind.CREATES, RelationKind.ANNOTATES,
                     RelationKind.RELATES_TO, RelationKind.CONTAINS, RelationKind.LINKS_TO):
            assert not kind.is_social


class TestNodes:
    def test_url_requires_value(self):
        with pytest.raises(ValueError):
            Url(url="")

    def test_profile_requires_id(self):
        with pytest.raises(ValueError):
            UserProfile(profile_id="", platform=Platform.TWITTER, display_name="x")

    def test_profile_defaults(self):
        p = UserProfile(profile_id="p1", platform=Platform.TWITTER, display_name="Alice")
        assert p.text == ""
        assert p.urls == ()
        assert p.person_id is None

    def test_resource_requires_id(self):
        with pytest.raises(ValueError):
            Resource(resource_id="", platform=Platform.TWITTER, text="x")

    def test_resource_fields(self):
        r = Resource(
            resource_id="r1",
            platform=Platform.FACEBOOK,
            text="post",
            urls=("http://a.b",),
            timestamp=5,
        )
        assert r.urls == ("http://a.b",)
        assert r.timestamp == 5

    def test_container_requires_id(self):
        with pytest.raises(ValueError):
            ResourceContainer(container_id="", platform=Platform.FACEBOOK, name="g")

    def test_nodes_are_frozen(self):
        r = Resource(resource_id="r1", platform=Platform.TWITTER, text="x")
        with pytest.raises(AttributeError):
            r.text = "y"


class TestSocialRelation:
    def test_valid_friendship(self):
        rel = SocialRelation("a", "b", RelationKind.FRIENDSHIP)
        assert rel.source == "a"

    def test_rejects_non_social_kind(self):
        with pytest.raises(ValueError):
            SocialRelation("a", "b", RelationKind.OWNS)

    def test_rejects_self_relation(self):
        with pytest.raises(ValueError):
            SocialRelation("a", "a", RelationKind.FOLLOWS)


class TestAnnotation:
    def test_defaults_to_like(self):
        ann = Annotation(profile_id="p", resource_id="r")
        assert ann.kind == "like"
