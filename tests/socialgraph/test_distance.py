"""Unit tests for the Table-1 distance gathering."""

import pytest

from repro.socialgraph.distance import (
    EvidenceKind,
    RelatedResource,
    ResourceGatherer,
    evidence_text,
    evidence_urls,
)
from repro.socialgraph.graph import SocialGraph
from repro.socialgraph.metamodel import (
    Platform,
    RelationKind,
    Resource,
    ResourceContainer,
    SocialRelation,
    UserProfile,
)


@pytest.fixture
def graph():
    """candidate --creates--> r_own
    candidate --annotates--> r_liked
    candidate --relatesTo--> group {contains r_group}
    candidate --follows--> star {creates r_star; relatesTo group2; follows star2}
    candidate --friend--> buddy {creates r_buddy}
    """
    g = SocialGraph(Platform.TWITTER)
    for pid in ("candidate", "star", "star2", "buddy"):
        g.add_profile(
            UserProfile(
                profile_id=pid,
                platform=Platform.TWITTER,
                display_name=pid,
                text=f"bio of {pid}",
                urls=(f"http://home/{pid}",),
            )
        )
    for rid in ("r_own", "r_liked", "r_group", "r_star", "r_buddy"):
        g.add_resource(
            Resource(resource_id=rid, platform=Platform.TWITTER, text=f"text {rid}",
                     urls=(f"http://page/{rid}",))
        )
    for cid in ("group", "group2"):
        g.add_container(
            ResourceContainer(container_id=cid, platform=Platform.TWITTER, name=cid,
                              text=f"about {cid}")
        )
    g.link_resource("candidate", "r_own", RelationKind.CREATES)
    g.link_resource("candidate", "r_liked", RelationKind.ANNOTATES)
    g.relate_to_container("candidate", "group")
    g.put_in_container("group", "r_group")
    g.add_social_relation(SocialRelation("candidate", "star", RelationKind.FOLLOWS))
    g.link_resource("star", "r_star", RelationKind.CREATES)
    g.relate_to_container("star", "group2")
    g.add_social_relation(SocialRelation("star", "star2", RelationKind.FOLLOWS))
    g.add_social_relation(SocialRelation("candidate", "buddy", RelationKind.FRIENDSHIP))
    g.link_resource("buddy", "r_buddy", RelationKind.CREATES)
    return g


def _ids_at(items, distance):
    return {i.node_id for i in items if i.distance == distance}


class TestGatherWithoutFriends:
    def test_distance_0_is_profile(self, graph):
        items = ResourceGatherer(graph).gather("candidate", 0)
        assert len(items) == 1
        assert items[0].node_id == "candidate"
        assert items[0].kind is EvidenceKind.PROFILE
        assert items[0].via == "self"

    def test_distance_1_contents(self, graph):
        items = ResourceGatherer(graph).gather("candidate", 1)
        assert _ids_at(items, 1) == {"r_own", "r_liked", "group", "star"}

    def test_distance_2_contents(self, graph):
        items = ResourceGatherer(graph).gather("candidate", 2)
        assert _ids_at(items, 2) == {"r_group", "r_star", "group2", "star2"}

    def test_friend_material_excluded_by_default(self, graph):
        items = ResourceGatherer(graph).gather("candidate", 2)
        ids = {i.node_id for i in items}
        assert "buddy" not in ids
        assert "r_buddy" not in ids

    def test_each_node_once_at_min_distance(self, graph):
        # r_own is both created and owned in other setups; here just
        # assert global uniqueness
        items = ResourceGatherer(graph).gather("candidate", 2)
        ids = [i.node_id for i in items]
        assert len(ids) == len(set(ids))

    def test_via_paths(self, graph):
        items = {i.node_id: i for i in ResourceGatherer(graph).gather("candidate", 2)}
        assert items["r_star"].via == "follows→creates"
        assert items["r_group"].via == "relatesTo→contains"
        assert items["group2"].via == "follows→relatesTo"
        assert items["star2"].via == "follows→follows"


class TestGatherWithFriends:
    def test_friend_profile_at_distance_1(self, graph):
        items = ResourceGatherer(graph, include_friends=True).gather("candidate", 1)
        assert "buddy" in _ids_at(items, 1)

    def test_friend_resources_at_distance_2(self, graph):
        items = ResourceGatherer(graph, include_friends=True).gather("candidate", 2)
        assert "r_buddy" in _ids_at(items, 2)


class TestGatherValidation:
    def test_invalid_distance(self, graph):
        with pytest.raises(ValueError):
            ResourceGatherer(graph).gather("candidate", 3)

    def test_unknown_candidate(self, graph):
        with pytest.raises(KeyError):
            ResourceGatherer(graph).gather("ghost", 1)

    def test_gather_all(self, graph):
        result = ResourceGatherer(graph).gather_all(["candidate", "star"], 1)
        assert set(result) == {"candidate", "star"}
        assert result["star"][0].node_id == "star"


class TestEvidenceAccessors:
    def test_profile_text(self, graph):
        item = RelatedResource("candidate", "star", EvidenceKind.PROFILE, 1, "follows")
        assert evidence_text(graph, item) == "star bio of star"

    def test_resource_text(self, graph):
        item = RelatedResource("candidate", "r_own", EvidenceKind.RESOURCE, 1, "creates")
        assert evidence_text(graph, item) == "text r_own"

    def test_container_text(self, graph):
        item = RelatedResource("candidate", "group", EvidenceKind.CONTAINER, 1, "relatesTo")
        assert "about group" in evidence_text(graph, item)

    def test_urls(self, graph):
        item = RelatedResource("candidate", "r_own", EvidenceKind.RESOURCE, 1, "creates")
        assert evidence_urls(graph, item) == ("http://page/r_own",)

    def test_invalid_distance_rejected(self):
        with pytest.raises(ValueError):
            RelatedResource("c", "n", EvidenceKind.RESOURCE, 5, "x")


def _reference_gather_many(graph, seeds, max_distance, *, include_friends=False):
    """The per-candidate loop gather_many replaces (the old build path)."""
    gatherer = ResourceGatherer(graph, include_friends=include_friends)
    distances, kinds = {}, {}
    for candidate_id, profile_ids in seeds.items():
        node_distance = {}
        for profile_id in profile_ids:
            for item in gatherer.gather(profile_id, max_distance):
                prev = node_distance.get(item.node_id)
                if prev is None or item.distance < prev:
                    node_distance[item.node_id] = item.distance
                if item.node_id not in kinds:
                    kinds[item.node_id] = item.kind
        distances[candidate_id] = node_distance
    return distances, kinds


class TestGatherMany:
    @pytest.mark.parametrize("max_distance", [0, 1, 2])
    @pytest.mark.parametrize("include_friends", [False, True])
    def test_equivalent_to_per_candidate_loop(self, graph, max_distance, include_friends):
        seeds = {"candidate": ("candidate",), "star": ("star",), "buddy": ("buddy",)}
        gathered = ResourceGatherer(
            graph, include_friends=include_friends
        ).gather_many(seeds, max_distance)
        ref_distances, ref_kinds = _reference_gather_many(
            graph, seeds, max_distance, include_friends=include_friends
        )
        assert gathered.distances == ref_distances
        assert gathered.kinds == ref_kinds
        # order matters too: it fixes the index insertion order downstream
        assert list(gathered.kinds) == list(ref_kinds)
        for cid in seeds:
            assert list(gathered.distances[cid]) == list(ref_distances[cid])

    def test_multi_profile_candidate_minimal_distance(self, graph):
        # star is at distance 1 from candidate's profile but distance 0
        # as its own seed profile: the merge keeps the minimum
        seeds = {"person": ("candidate", "star")}
        gathered = ResourceGatherer(graph).gather_many(seeds, 2)
        assert gathered.distances["person"]["star"] == 0
        assert gathered.distances["person"]["candidate"] == 0
        ref_distances, _ = _reference_gather_many(graph, seeds, 2)
        assert gathered.distances == ref_distances

    def test_overlapping_candidates_share_frontier(self, graph):
        # both candidates reach star's material; results stay per-candidate
        seeds = {"a": ("candidate",), "b": ("star",)}
        gathered = ResourceGatherer(graph).gather_many(seeds, 2)
        assert "r_star" in gathered.distances["a"]  # via follows→creates
        assert gathered.distances["a"]["r_star"] == 2
        assert gathered.distances["b"]["r_star"] == 1
        assert gathered.kinds["r_star"] is EvidenceKind.RESOURCE

    def test_invalid_distance(self, graph):
        with pytest.raises(ValueError):
            ResourceGatherer(graph).gather_many({"c": ("candidate",)}, 3)

    def test_empty_seeds(self, graph):
        gathered = ResourceGatherer(graph).gather_many({}, 2)
        assert gathered.distances == {}
        assert gathered.kinds == {}


class TestNodeAccessors:
    def test_node_text_matches_evidence_text(self, graph):
        from repro.socialgraph.distance import node_text, node_urls

        for node_id, kind in (
            ("star", EvidenceKind.PROFILE),
            ("r_own", EvidenceKind.RESOURCE),
            ("group", EvidenceKind.CONTAINER),
        ):
            item = RelatedResource("candidate", node_id, kind, 1, "x")
            assert node_text(graph, node_id, kind) == evidence_text(graph, item)
            assert node_urls(graph, node_id, kind) == evidence_urls(graph, item)
