"""Unit tests for platform capability descriptors."""

import pytest

from repro.socialgraph.metamodel import Platform
from repro.socialgraph.platforms import PlatformCapabilities, capabilities_for


class TestCapabilities:
    def test_twitter_has_no_containers(self):
        assert not capabilities_for(Platform.TWITTER).has_containers

    def test_facebook_and_linkedin_have_containers(self):
        assert capabilities_for(Platform.FACEBOOK).has_containers
        assert capabilities_for(Platform.LINKEDIN).has_containers

    def test_twitter_relations_unidirectional(self):
        assert not capabilities_for(Platform.TWITTER).bidirectional_relations

    def test_linkedin_profiles_richest(self):
        richness = {p: capabilities_for(p).profile_richness for p in Platform}
        assert richness[Platform.LINKEDIN] > richness[Platform.FACEBOOK]
        assert richness[Platform.FACEBOOK] > richness[Platform.TWITTER]

    def test_facebook_friend_visibility_tiny(self):
        # the paper observed ~0.6% of friends visible to a third-party app
        assert capabilities_for(Platform.FACEBOOK).friend_visibility == pytest.approx(0.006)

    def test_twitter_most_open(self):
        assert capabilities_for(Platform.TWITTER).friend_visibility == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PlatformCapabilities(
                platform=Platform.TWITTER,
                has_containers=False,
                bidirectional_relations=False,
                profile_richness=1.5,
                friend_visibility=0.5,
                page_size=10,
                rate_limit=10,
            )
