"""Unit tests for the SocialGraph store."""

import pytest

from repro.socialgraph.graph import (
    DuplicateNodeError,
    SocialGraph,
    UnknownNodeError,
    merge_graphs,
)
from repro.socialgraph.metamodel import (
    Platform,
    RelationKind,
    Resource,
    ResourceContainer,
    SocialRelation,
    UserProfile,
)


def _profile(pid: str, platform=Platform.TWITTER) -> UserProfile:
    return UserProfile(profile_id=pid, platform=platform, display_name=pid)


def _resource(rid: str, platform=Platform.TWITTER) -> Resource:
    return Resource(resource_id=rid, platform=platform, text=f"text of {rid}")


def _container(cid: str, platform=Platform.FACEBOOK) -> ResourceContainer:
    return ResourceContainer(container_id=cid, platform=platform, name=cid)


@pytest.fixture
def graph():
    g = SocialGraph(Platform.TWITTER)
    for pid in ("a", "b", "c"):
        g.add_profile(_profile(pid))
    for rid in ("r1", "r2"):
        g.add_resource(_resource(rid))
    g.add_container(_container("g1"))
    return g


class TestNodeRegistration:
    def test_identical_re_add_is_noop(self, graph):
        graph.add_profile(_profile("a"))
        assert graph.counts()["profiles"] == 3

    def test_conflicting_profile_rejected(self, graph):
        other = UserProfile(profile_id="a", platform=Platform.TWITTER,
                            display_name="different")
        with pytest.raises(DuplicateNodeError):
            graph.add_profile(other)

    def test_conflicting_resource_rejected(self, graph):
        with pytest.raises(DuplicateNodeError):
            graph.add_resource(
                Resource(resource_id="r1", platform=Platform.TWITTER, text="changed")
            )

    def test_lookup_unknown_raises(self, graph):
        with pytest.raises(UnknownNodeError):
            graph.profile("nope")
        with pytest.raises(UnknownNodeError):
            graph.resource("nope")
        with pytest.raises(UnknownNodeError):
            graph.container("nope")

    def test_len_counts_all_nodes(self, graph):
        assert len(graph) == 3 + 2 + 1

    def test_has_profile(self, graph):
        assert graph.has_profile("a")
        assert not graph.has_profile("zz")


class TestSocialRelations:
    def test_follows_is_directed(self, graph):
        graph.add_social_relation(SocialRelation("a", "b", RelationKind.FOLLOWS))
        assert graph.followed_by("a") == ("b",)
        assert graph.followed_by("b") == ()
        assert graph.followers_of("b") == ("a",)

    def test_friendship_is_symmetric(self, graph):
        graph.add_social_relation(SocialRelation("a", "b", RelationKind.FRIENDSHIP))
        assert "b" in graph.friends_of("a")
        assert "a" in graph.friends_of("b")

    def test_mutual_follow_promoted_to_friendship(self, graph):
        graph.add_social_relation(SocialRelation("a", "b", RelationKind.FOLLOWS))
        graph.add_social_relation(SocialRelation("b", "a", RelationKind.FOLLOWS))
        assert "b" in graph.friends_of("a")
        assert "a" in graph.friends_of("b")
        assert graph.followed_by("a") == ()
        assert graph.followed_by("b") == ()

    def test_duplicate_follow_ignored(self, graph):
        graph.add_social_relation(SocialRelation("a", "b", RelationKind.FOLLOWS))
        graph.add_social_relation(SocialRelation("a", "b", RelationKind.FOLLOWS))
        assert graph.followed_by("a") == ("b",)

    def test_edge_requires_known_profiles(self, graph):
        with pytest.raises(UnknownNodeError):
            graph.add_social_relation(SocialRelation("a", "zz", RelationKind.FOLLOWS))


class TestResourceRelations:
    def test_link_resource_and_inverse(self, graph):
        graph.link_resource("a", "r1", RelationKind.CREATES)
        assert ("r1", RelationKind.CREATES) in graph.direct_resources("a")
        assert ("a", RelationKind.CREATES) in graph.related_profiles("r1")

    def test_direct_resources_filter_by_kind(self, graph):
        graph.link_resource("a", "r1", RelationKind.CREATES)
        graph.link_resource("a", "r2", RelationKind.ANNOTATES)
        only_created = graph.direct_resources("a", kinds=(RelationKind.CREATES,))
        assert only_created == (("r1", RelationKind.CREATES),)

    def test_link_rejects_social_kind(self, graph):
        with pytest.raises(ValueError):
            graph.link_resource("a", "r1", RelationKind.FOLLOWS)

    def test_duplicate_link_ignored(self, graph):
        graph.link_resource("a", "r1", RelationKind.OWNS)
        graph.link_resource("a", "r1", RelationKind.OWNS)
        assert graph.direct_resources("a").count(("r1", RelationKind.OWNS)) == 1


class TestContainers:
    def test_membership(self, graph):
        graph.relate_to_container("a", "g1")
        assert graph.containers_of("a") == ("g1",)
        assert graph.members_of("g1") == ("a",)

    def test_containment(self, graph):
        graph.put_in_container("g1", "r1")
        assert graph.resources_in("g1") == ("r1",)
        assert graph.container_of("r1") == "g1"

    def test_resource_in_single_container(self, graph):
        graph.add_container(_container("g2"))
        graph.put_in_container("g1", "r1")
        with pytest.raises(ValueError):
            graph.put_in_container("g2", "r1")

    def test_container_of_none_when_loose(self, graph):
        assert graph.container_of("r2") is None


class TestMergeGraphs:
    def test_merge_two_platforms(self):
        g1 = SocialGraph(Platform.TWITTER)
        g1.add_profile(_profile("tw:a"))
        g1.add_profile(_profile("tw:b"))
        g1.add_resource(_resource("tw:r1"))
        g1.link_resource("tw:a", "tw:r1", RelationKind.CREATES)
        g1.add_social_relation(SocialRelation("tw:a", "tw:b", RelationKind.FOLLOWS))

        g2 = SocialGraph(Platform.FACEBOOK)
        g2.add_profile(_profile("fb:a", Platform.FACEBOOK))
        g2.add_container(_container("fb:g1"))
        g2.add_resource(_resource("fb:r1", Platform.FACEBOOK))
        g2.relate_to_container("fb:a", "fb:g1")
        g2.put_in_container("fb:g1", "fb:r1")

        merged = merge_graphs([g1, g2])
        assert merged.platform is None
        assert merged.counts() == {"profiles": 3, "resources": 2, "containers": 1}
        assert merged.followed_by("tw:a") == ("tw:b",)
        assert merged.containers_of("fb:a") == ("fb:g1",)
        assert merged.resources_in("fb:g1") == ("fb:r1",)
        assert ("tw:r1", RelationKind.CREATES) in merged.direct_resources("tw:a")

    def test_merge_preserves_friendships(self):
        g = SocialGraph(Platform.FACEBOOK)
        g.add_profile(_profile("x", Platform.FACEBOOK))
        g.add_profile(_profile("y", Platform.FACEBOOK))
        g.add_social_relation(SocialRelation("x", "y", RelationKind.FRIENDSHIP))
        merged = merge_graphs([g])
        assert "y" in merged.friends_of("x")
