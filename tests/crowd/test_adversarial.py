"""Adversarial inputs across the crowd modules.

The gateway exposes routing, jury selection, and team formation to
untrusted HTTP clients, so every malformed shape a client can produce
must surface as a typed ``ValueError``/``KeyError`` (which the gateway
maps to a structured 400) — never as a wrong answer or an unrelated
crash deep inside an algorithm.
"""

from __future__ import annotations

import pytest

import networkx as nx

from repro.crowd.jury import JurorProfile, JurySelector, majority_error_rate
from repro.crowd.routing import (
    ContactModel,
    QuestionRouter,
    RoutingStrategy,
    default_contact_models,
)
from repro.crowd.team_formation import SkillCoverageError, TeamFormation
from repro.core.ranking import ExpertScore


def _ranked(*cids: str) -> list[ExpertScore]:
    return [
        ExpertScore(candidate_id=cid, score=float(len(cids) - i), supporting_resources=1)
        for i, cid in enumerate(cids)
    ]


# -- jury ------------------------------------------------------------------------


class TestJuryAdversarial:
    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            JurySelector([])

    def test_error_rate_out_of_range(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            JurorProfile(candidate_id="a", error_rate=1.5)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            JurorProfile(candidate_id="a", error_rate=-0.1)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            JurorProfile(candidate_id="a", error_rate=0.2, cost=-1.0)

    def test_majority_error_rate_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            majority_error_rate([])

    @pytest.mark.parametrize("score", [0, 8, -3, 3.5, True, "5"])
    def test_from_expertise_likert_out_of_range(self, score):
        with pytest.raises(ValueError, match="1..7"):
            JurySelector.from_expertise({"a": score})

    def test_from_expertise_bad_error_bounds(self):
        with pytest.raises(ValueError, match="worst_error"):
            JurySelector.from_expertise({"a": 4}, best_error=0.4, worst_error=0.1)

    @pytest.mark.parametrize("max_size", [0, -1, -100])
    def test_select_max_size_below_one(self, max_size):
        selector = JurySelector([JurorProfile("a", 0.1)])
        with pytest.raises(ValueError, match="max_size"):
            selector.select(max_size=max_size)

    @pytest.mark.parametrize("budget", [0.0, -5.0])
    def test_select_budget_admits_nobody(self, budget):
        selector = JurySelector([JurorProfile("a", 0.1, cost=1.0)])
        with pytest.raises(ValueError, match="budget"):
            selector.select(budget=budget)

    def test_select_still_works_after_validation(self):
        selector = JurySelector.from_expertise({"a": 7, "b": 6, "c": 2})
        decision = selector.select(max_size=3)
        assert decision.members
        assert 0.0 <= decision.jury_error_rate <= 1.0


# -- routing ---------------------------------------------------------------------


class TestRoutingAdversarial:
    def test_empty_contact_models_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            QuestionRouter({})

    def test_empty_ranking_rejected(self):
        router = QuestionRouter(default_contact_models(["a"]))
        with pytest.raises(ValueError, match="empty"):
            router.plan([], RoutingStrategy.PARALLEL)

    @pytest.mark.parametrize("top_k", [0, -2])
    def test_nonpositive_top_k_rejected(self, top_k):
        router = QuestionRouter(default_contact_models(["a"]))
        with pytest.raises(ValueError, match="positive"):
            router.plan(_ranked("a"), RoutingStrategy.SEQUENTIAL, top_k=top_k)

    @pytest.mark.parametrize("wave_size", [0, -1])
    def test_nonpositive_wave_size_rejected(self, wave_size):
        router = QuestionRouter(default_contact_models(["a"]))
        with pytest.raises(ValueError, match="positive"):
            router.plan(
                _ranked("a"), RoutingStrategy.HYBRID, wave_size=wave_size
            )

    @pytest.mark.parametrize("target", [0.0, 1.0, -0.5, 2.0])
    def test_target_probability_out_of_open_interval(self, target):
        router = QuestionRouter(default_contact_models(["a"]))
        with pytest.raises(ValueError, match="target_probability"):
            router.plan(
                _ranked("a"),
                RoutingStrategy.HYBRID,
                target_probability=target,
            )

    def test_unknown_candidate_in_ranking(self):
        router = QuestionRouter(default_contact_models(["a"]))
        with pytest.raises(KeyError, match="stranger"):
            router.plan(_ranked("a", "stranger"), RoutingStrategy.PARALLEL)

    def test_contact_model_bounds(self):
        with pytest.raises(ValueError, match="answer_probability"):
            ContactModel(answer_probability=1.2, response_time=1.0)
        with pytest.raises(ValueError, match="response_time"):
            ContactModel(answer_probability=0.5, response_time=0.0)

    def test_all_silent_contacts_plan_has_no_latency(self):
        router = QuestionRouter(
            {"a": ContactModel(answer_probability=0.0, response_time=1.0)}
        )
        plan = router.plan(_ranked("a"), RoutingStrategy.PARALLEL)
        assert plan.answer_probability == 0.0
        assert plan.expected_latency is None


# -- team formation --------------------------------------------------------------


class TestTeamAdversarial:
    def test_empty_skill_map_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            TeamFormation({}, nx.Graph())

    def test_empty_required_skills_rejected(self):
        formation = TeamFormation({"a": {"x"}}, nx.Graph())
        with pytest.raises(ValueError, match="non-empty"):
            formation.rarest_first([])
        with pytest.raises(ValueError, match="non-empty"):
            formation.greedy_cover([])

    def test_unknown_skill_rejected_by_both_algorithms(self):
        formation = TeamFormation({"a": {"x"}}, nx.Graph())
        with pytest.raises(SkillCoverageError, match="quantum basket weaving"):
            formation.rarest_first(["x", "quantum basket weaving"])
        with pytest.raises(SkillCoverageError, match="quantum basket weaving"):
            formation.greedy_cover(["x", "quantum basket weaving"])

    def test_unknown_skill_is_a_value_error(self):
        # the gateway maps ValueError → 400; SkillCoverageError must stay one
        assert issubclass(SkillCoverageError, ValueError)

    def test_candidates_off_graph_use_disconnected_penalty(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        formation = TeamFormation({"a": {"x"}, "ghost": {"y"}}, graph)
        team = formation.rarest_first(["x", "y"])
        assert team.members == frozenset({"a", "ghost"})
        assert team.diameter_cost == TeamFormation.DISCONNECTED_PENALTY
