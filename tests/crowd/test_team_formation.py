"""Unit tests for the Expert Team Formation module."""

import networkx as nx
import pytest

from repro.crowd.team_formation import SkillCoverageError, Team, TeamFormation


@pytest.fixture
def formation():
    """Pool:  a{py,db}  b{py}  c{web}  d{db,web}  e{ml}
    Graph:  a—b—c—d (path), e isolated."""
    skills = {
        "a": {"py", "db"},
        "b": {"py"},
        "c": {"web"},
        "d": {"db", "web"},
        "e": {"ml"},
    }
    graph = nx.Graph()
    graph.add_edges_from([("a", "b"), ("b", "c"), ("c", "d")])
    graph.add_node("e")
    return TeamFormation(skills, graph)


class TestDistance:
    def test_self_distance_zero(self, formation):
        assert formation.distance("a", "a") == 0.0

    def test_path_distance(self, formation):
        assert formation.distance("a", "d") == 3.0

    def test_disconnected_penalty(self, formation):
        assert formation.distance("a", "e") == TeamFormation.DISCONNECTED_PENALTY

    def test_symmetric(self, formation):
        assert formation.distance("a", "c") == formation.distance("c", "a")


class TestRarestFirst:
    def test_covers_all_skills(self, formation):
        team = formation.rarest_first(["py", "db", "web"])
        covered = set()
        for member in team.members:
            covered |= formation._skills[member]
        assert {"py", "db", "web"} <= covered

    def test_single_member_team_when_possible(self, formation):
        team = formation.rarest_first(["db", "web"])
        # d holds both skills → a one-person team with zero cost
        assert team.members == frozenset({"d"})
        assert team.diameter_cost == 0.0

    def test_prefers_close_holders(self, formation):
        team = formation.rarest_first(["py", "web"])
        # py: {a, b}, web: {c, d}; the closest pair is (b, c), distance 1
        assert team.diameter_cost <= 2.0

    def test_uncoverable_skill_raises(self, formation):
        with pytest.raises(SkillCoverageError):
            formation.rarest_first(["py", "quantum"])

    def test_empty_requirements_rejected(self, formation):
        with pytest.raises(ValueError):
            formation.rarest_first([])


class TestGreedyCover:
    def test_covers_all_skills(self, formation):
        team = formation.greedy_cover(["py", "db", "web", "ml"])
        covered = set()
        for member in team.members:
            covered |= formation._skills[member]
        assert {"py", "db", "web", "ml"} <= covered

    def test_prefers_multi_skill_members(self, formation):
        team = formation.greedy_cover(["db", "web"])
        assert team.members == frozenset({"d"})

    def test_mst_cost_reported(self, formation):
        team = formation.greedy_cover(["py", "ml"])
        assert team.mst_cost >= 0.0
        assert "e" in team.members  # only ml holder

    def test_costs_zero_for_singleton(self, formation):
        team = formation.greedy_cover(["ml"])
        assert team.mst_cost == 0.0
        assert team.diameter_cost == 0.0


class TestTeamValidation:
    def test_empty_team_rejected(self):
        with pytest.raises(ValueError):
            Team(
                members=frozenset(),
                required_skills=frozenset({"x"}),
                diameter_cost=0.0,
                mst_cost=0.0,
            )

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            TeamFormation({}, nx.Graph())


class TestOnDataset:
    def test_team_from_expert_rankings(self, tiny_dataset, tiny_context):
        """Skills = domains a candidate ranks top-5 for; the formed team
        covers a multi-domain task."""
        from repro.core.config import FinderConfig

        finder = tiny_context.runner.finder(None, FinderConfig())
        skills: dict[str, set[str]] = {}
        for domain in ("sport", "music", "computer_engineering"):
            queries = [q for q in tiny_dataset.queries if q.domain == domain]
            for expert in finder.find_experts(queries[0], top_k=5):
                skills.setdefault(expert.candidate_id, set()).add(domain)
        graph = nx.Graph()
        for pid in skills:
            graph.add_node(pid)
        # friendship edges among volunteers (Facebook graph)
        from repro.socialgraph.metamodel import Platform

        fb = tiny_dataset.graphs[Platform.FACEBOOK]
        mapping = {
            profiles[Platform.FACEBOOK]: person_id
            for person_id, profiles in tiny_dataset.networks.profile_ids.items()
        }
        for fb_id, person_id in mapping.items():
            for friend in fb.friends_of(fb_id):
                friend_person = mapping.get(friend)
                if friend_person and person_id in skills and friend_person in skills:
                    graph.add_edge(person_id, friend_person)
        formation = TeamFormation(skills, graph)
        team = formation.greedy_cover(["sport", "music", "computer_engineering"])
        assert len(team.members) <= 3
