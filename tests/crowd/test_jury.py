"""Unit tests for the Jury Selection Problem module."""

import itertools

import pytest

from repro.crowd.jury import JurorProfile, JurySelector, majority_error_rate


class TestMajorityErrorRate:
    def test_single_juror(self):
        assert majority_error_rate([0.3]) == pytest.approx(0.3)

    def test_three_identical(self):
        # P(≥2 wrong of 3 at ε=0.3) = 3·0.09·0.7 + 0.027
        assert majority_error_rate([0.3, 0.3, 0.3]) == pytest.approx(0.216)

    def test_perfect_jurors(self):
        assert majority_error_rate([0.0, 0.0, 0.0]) == 0.0

    def test_coin_flippers(self):
        assert majority_error_rate([0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_even_jury_tie_counts_half(self):
        # two jurors ε=0.5: P(2 wrong)=0.25 + 0.5·P(tie)=0.25 → 0.5
        assert majority_error_rate([0.5, 0.5]) == pytest.approx(0.5)

    def test_adding_good_jurors_helps(self):
        base = majority_error_rate([0.2])
        bigger = majority_error_rate([0.2, 0.2, 0.2])
        assert bigger < base

    def test_adding_bad_jurors_hurts(self):
        base = majority_error_rate([0.1])
        polluted = majority_error_rate([0.1, 0.45, 0.45])
        assert polluted > base

    def test_matches_bruteforce(self):
        rates = [0.1, 0.25, 0.4]
        expected = 0.0
        for outcome in itertools.product([0, 1], repeat=3):
            p = 1.0
            for wrong, rate in zip(outcome, rates):
                p *= rate if wrong else (1 - rate)
            if sum(outcome) * 2 > 3:
                expected += p
        assert majority_error_rate(rates) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            majority_error_rate([])
        with pytest.raises(ValueError):
            majority_error_rate([1.2])


class TestJurySelector:
    def test_selects_best_odd_prefix(self):
        selector = JurySelector(
            [
                JurorProfile("good1", 0.05),
                JurorProfile("good2", 0.1),
                JurorProfile("good3", 0.1),
                JurorProfile("bad", 0.45),
            ]
        )
        decision = selector.select()
        assert "bad" not in decision.members
        assert len(decision.members) % 2 == 1
        assert decision.jury_error_rate < 0.05

    def test_budget_limits_size(self):
        selector = JurySelector([JurorProfile(f"j{i}", 0.2) for i in range(9)])
        decision = selector.select(budget=3.0)
        assert len(decision.members) <= 3
        assert decision.total_cost <= 3.0

    def test_max_size(self):
        selector = JurySelector([JurorProfile(f"j{i}", 0.2) for i in range(9)])
        decision = selector.select(max_size=5)
        assert len(decision.members) <= 5

    def test_impossible_budget(self):
        selector = JurySelector([JurorProfile("j", 0.2, cost=5.0)])
        with pytest.raises(ValueError):
            selector.select(budget=1.0)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            JurySelector([])

    def test_from_expertise_mapping(self):
        selector = JurySelector.from_expertise({"expert": 7, "novice": 1})
        decision = selector.select(max_size=1)
        assert decision.members == ("expert",)
        assert decision.jury_error_rate == pytest.approx(0.05)

    def test_from_expertise_interpolation(self):
        selector = JurySelector.from_expertise({"mid": 4}, best_error=0.1, worst_error=0.4)
        decision = selector.select()
        assert decision.jury_error_rate == pytest.approx(0.25)

    def test_from_expertise_validation(self):
        with pytest.raises(ValueError):
            JurySelector.from_expertise({"x": 4}, best_error=0.4, worst_error=0.1)

    def test_bigger_jury_of_equals_always_helps(self):
        # with ε < 0.5 for everyone, growing the (odd) jury lowers JER
        selector = JurySelector([JurorProfile(f"j{i}", 0.3) for i in range(7)])
        decision = selector.select()
        assert len(decision.members) == 7

    def test_jury_on_dataset_ground_truth(self, tiny_dataset):
        """Select the sport-decision jury from the questionnaire: all
        members must be sport experts when enough exist."""
        likert = {
            pid: tiny_dataset.ground_truth.likert(pid, "sport")
            for pid in tiny_dataset.person_ids
        }
        selector = JurySelector.from_expertise(likert)
        decision = selector.select(max_size=3)
        experts = tiny_dataset.ground_truth.experts("sport")
        assert set(decision.members) <= set(likert)
        top3 = sorted(likert, key=likert.get, reverse=True)[:3]
        assert set(decision.members) == set(
            sorted(top3, key=lambda pid: (-likert[pid], pid))
        ) or all(likert[m] >= 4 for m in decision.members)
        assert len(set(decision.members) & experts) >= 2
