"""Unit tests for crowd-search question routing."""

import pytest

from repro.core.ranking import ExpertScore
from repro.crowd.routing import (
    ContactModel,
    QuestionRouter,
    RoutingStrategy,
    default_contact_models,
)


def _ranked(*ids):
    return [
        ExpertScore(candidate_id=cid, score=float(10 - i), supporting_resources=1)
        for i, cid in enumerate(ids)
    ]


@pytest.fixture
def router():
    return QuestionRouter(
        {
            "alice": ContactModel(answer_probability=0.8, response_time=2.0),
            "bob": ContactModel(answer_probability=0.5, response_time=1.0),
            "carol": ContactModel(answer_probability=0.3, response_time=4.0),
            "dave": ContactModel(answer_probability=0.0, response_time=5.0),
        }
    )


class TestPlans:
    def test_parallel_single_wave(self, router):
        plan = router.plan(_ranked("alice", "bob", "carol"), RoutingStrategy.PARALLEL)
        assert len(plan.waves) == 1
        assert plan.contacts == 3

    def test_sequential_one_per_wave(self, router):
        plan = router.plan(_ranked("alice", "bob"), RoutingStrategy.SEQUENTIAL)
        assert plan.waves == (("alice",), ("bob",))

    def test_hybrid_stops_at_target(self, router):
        plan = router.plan(
            _ranked("alice", "bob", "carol"),
            RoutingStrategy.HYBRID,
            wave_size=2,
            target_probability=0.85,
        )
        # alice+bob already give 1 − 0.2·0.5 = 0.9 ≥ 0.85
        assert plan.waves == (("alice", "bob"),)

    def test_hybrid_adds_waves_for_high_target(self, router):
        plan = router.plan(
            _ranked("alice", "bob", "carol"),
            RoutingStrategy.HYBRID,
            wave_size=1,
            target_probability=0.95,
        )
        assert len(plan.waves) >= 2

    def test_answer_probability_combination(self, router):
        plan = router.plan(_ranked("alice", "bob"), RoutingStrategy.PARALLEL)
        assert plan.answer_probability == pytest.approx(1 - 0.2 * 0.5)

    def test_same_contacts_same_probability_across_strategies(self, router):
        ranked = _ranked("alice", "bob", "carol")
        par = router.plan(ranked, RoutingStrategy.PARALLEL, top_k=3)
        seq = router.plan(ranked, RoutingStrategy.SEQUENTIAL, top_k=3)
        assert par.answer_probability == pytest.approx(seq.answer_probability)

    def test_parallel_faster_than_sequential(self, router):
        ranked = _ranked("alice", "bob", "carol")
        par = router.plan(ranked, RoutingStrategy.PARALLEL, top_k=3)
        seq = router.plan(ranked, RoutingStrategy.SEQUENTIAL, top_k=3)
        assert par.expected_latency < seq.expected_latency

    def test_never_answering_contact(self, router):
        plan = router.plan(_ranked("dave"), RoutingStrategy.PARALLEL)
        assert plan.answer_probability == 0.0
        assert plan.expected_latency is None

    def test_compare_covers_all_strategies(self, router):
        plans = router.compare(_ranked("alice", "bob"))
        assert set(plans) == set(RoutingStrategy)


class TestValidation:
    def test_empty_models_rejected(self):
        with pytest.raises(ValueError):
            QuestionRouter({})

    def test_unknown_candidate(self, router):
        with pytest.raises(KeyError):
            router.plan(_ranked("ghost"), RoutingStrategy.PARALLEL)

    def test_empty_ranking(self, router):
        with pytest.raises(ValueError):
            router.plan([], RoutingStrategy.PARALLEL)

    def test_bad_parameters(self, router):
        with pytest.raises(ValueError):
            router.plan(_ranked("alice"), RoutingStrategy.HYBRID, top_k=0)
        with pytest.raises(ValueError):
            router.plan(_ranked("alice"), RoutingStrategy.HYBRID, target_probability=1.5)

    def test_contact_model_validation(self):
        with pytest.raises(ValueError):
            ContactModel(answer_probability=1.5, response_time=1.0)
        with pytest.raises(ValueError):
            ContactModel(answer_probability=0.5, response_time=0.0)


class TestDefaultModels:
    def test_deterministic(self):
        a = default_contact_models(["x", "y"], seed=3)
        b = default_contact_models(["x", "y"], seed=3)
        assert a == b

    def test_ranges(self):
        models = default_contact_models([f"c{i}" for i in range(50)], seed=1)
        for model in models.values():
            assert 0.3 <= model.answer_probability <= 0.9
            assert 1.0 <= model.response_time <= 12.0

    def test_end_to_end_with_finder(self, tiny_dataset, tiny_context):
        from repro.core.config import FinderConfig

        finder = tiny_context.runner.finder(None, FinderConfig())
        ranked = finder.find_experts("famous european football teams", top_k=5)
        router = QuestionRouter(default_contact_models(tiny_dataset.person_ids, seed=7))
        plans = router.compare(ranked, top_k=3)
        for plan in plans.values():
            assert plan.answer_probability > 0
