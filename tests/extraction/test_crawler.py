"""Unit tests for the resource extractor (crawler) and corpus analyzer."""

import pytest

from repro.extraction.api import (
    AccountRecord,
    AuthToken,
    ContainerRecord,
    PlatformClient,
    PlatformStore,
)
from repro.extraction.crawler import CorpusAnalyzer, ResourceExtractor
from repro.extraction.privacy import PrivacyPolicy
from repro.extraction.url_content import SyntheticWeb, UrlContentExtractor, WebPage
from repro.socialgraph.distance import ResourceGatherer
from repro.socialgraph.metamodel import Platform, Resource, ResourceContainer, UserProfile
from repro.socialgraph.platforms import PlatformCapabilities


def _profile(pid, platform=Platform.FACEBOOK, text=""):
    return UserProfile(profile_id=pid, platform=platform, display_name=pid, text=text)


@pytest.fixture
def store():
    """me: 2 wall posts, 1 like on star's post, member of g1 (2 posts),
    follows star (1 post, member of g2); friend buddy (closed privacy);
    friend pal (open, 1 post)."""
    store = PlatformStore(Platform.FACEBOOK)
    me = AccountRecord(profile=_profile("me"))
    star = AccountRecord(profile=_profile("star", text="famous swimmer"))
    buddy = AccountRecord(profile=_profile("buddy"), privacy=PrivacyPolicy.closed())
    pal = AccountRecord(profile=_profile("pal"))
    for acc in (me, star, buddy, pal):
        store.add_account(acc)

    def res(rid, text="some text"):
        store.add_resource(Resource(resource_id=rid, platform=Platform.FACEBOOK,
                                    text=text, timestamp=int(rid[-1])))
        return rid

    me.created.extend([res("w1"), res("w2")])
    me.owned.extend(["w1", "w2"])
    star.created.append(res("s1"))
    star.owned.append("s1")
    me.annotated.append("s1")
    pal.created.append(res("p1"))
    g1 = ContainerRecord(container=ResourceContainer(
        container_id="g1", platform=Platform.FACEBOOK, name="group one"))
    g1.resource_ids.extend([res("c2"), res("c1")])
    g1.members.append("me")
    store.add_container(g1)
    me.containers.append("g1")
    g2 = ContainerRecord(container=ResourceContainer(
        container_id="g2", platform=Platform.FACEBOOK, name="group two"))
    store.add_container(g2)
    star.containers.append("g2")
    me.follows.append("star")
    me.friends.extend(["buddy", "pal"])
    return store


@pytest.fixture
def graph(store):
    client = PlatformClient(store, AuthToken("t", "me"))
    return ResourceExtractor().extract([client])


class TestExtraction:
    def test_subject_material(self, graph):
        assert graph.has_profile("me")
        assert {r for r, _ in graph.direct_resources("me")} == {"w1", "w2", "s1"}
        assert graph.containers_of("me") == ("g1",)
        assert set(graph.resources_in("g1")) == {"c1", "c2"}

    def test_followed_user_material(self, graph):
        assert graph.has_profile("star")
        assert graph.followed_by("me") == ("star",)
        assert {r for r, _ in graph.direct_resources("star")} == {"s1"}
        assert graph.containers_of("star") == ("g2",)

    def test_closed_friend_skipped(self, graph):
        assert not graph.has_profile("buddy")

    def test_open_friend_extracted(self, graph):
        assert graph.has_profile("pal")
        assert "pal" in graph.friends_of("me")
        assert {r for r, _ in graph.direct_resources("pal")} == {"p1"}

    def test_table1_distances(self, graph):
        items = ResourceGatherer(graph).gather("me", 2)
        at = {d: {i.node_id for i in items if i.distance == d} for d in (0, 1, 2)}
        assert at[0] == {"me"}
        assert at[1] == {"w1", "w2", "s1", "g1", "star"}
        assert at[2] == {"c1", "c2", "g2"}

    def test_rate_limit_recovery(self, store):
        caps = PlatformCapabilities(
            platform=Platform.FACEBOOK, has_containers=True,
            bidirectional_relations=True, profile_richness=0.3,
            friend_visibility=1.0, page_size=25, rate_limit=2,
        )
        client = PlatformClient(store, AuthToken("t", "me"), capabilities=caps)
        graph = ResourceExtractor().extract([client])
        assert graph.has_profile("me")
        assert client.rate_limit_hits > 0

    def test_caps_validated(self):
        with pytest.raises(ValueError):
            ResourceExtractor(max_container_resources=0)

    def test_requires_clients(self):
        with pytest.raises(ValueError):
            ResourceExtractor().extract([])

    def test_mixed_platform_clients_rejected(self, store):
        other = PlatformStore(Platform.TWITTER)
        other.add_account(AccountRecord(profile=_profile("x", Platform.TWITTER)))
        c1 = PlatformClient(store, AuthToken("a", "me"))
        c2 = PlatformClient(other, AuthToken("b", "x"))
        with pytest.raises(ValueError):
            ResourceExtractor().extract([c1, c2])

    def test_container_resource_cap(self, store):
        client = PlatformClient(store, AuthToken("t", "me"))
        graph = ResourceExtractor(max_container_resources=1).extract([client])
        assert len(graph.resources_in("g1")) == 1

    def test_shared_neighbor_not_recrawled(self, store):
        # two volunteers following the same star: star crawled once
        me2 = AccountRecord(profile=_profile("me2"))
        store.add_account(me2)
        me2.follows.append("star")
        clients = [
            PlatformClient(store, AuthToken("t1", "me")),
            PlatformClient(store, AuthToken("t2", "me2")),
        ]
        graph = ResourceExtractor().extract(clients)
        assert graph.followed_by("me2") == ("star",)
        assert graph.followed_by("me") == ("star",)


class TestCorpusAnalyzer:
    def test_analyze_graph_covers_all_nodes(self, graph, analyzer):
        corpus = CorpusAnalyzer(analyzer).analyze_graph(graph)
        for profile in graph.profiles():
            assert profile.profile_id in corpus
        for resource in graph.resources():
            assert resource.resource_id in corpus
        for container in graph.containers():
            assert container.container_id in corpus

    def test_url_enrichment(self, analyzer):
        web = SyntheticWeb()
        web.publish(WebPage(url="http://x/1", title="butterfly stroke analysis",
                            main_text="detailed breakdown of the butterfly technique"))
        from repro.socialgraph.graph import SocialGraph

        g = SocialGraph(Platform.TWITTER)
        g.add_profile(_profile("u", Platform.TWITTER))
        g.add_resource(Resource(resource_id="r", platform=Platform.TWITTER,
                                text="read this", urls=("http://x/1",)))
        from repro.socialgraph.metamodel import RelationKind

        g.link_resource("u", "r", RelationKind.CREATES)
        corpus = CorpusAnalyzer(analyzer, UrlContentExtractor(web)).analyze_graph(g)
        assert "butterfli" in corpus["r"].term_counts  # stem of butterfly

    def test_analyze_evidence_subset(self, graph, analyzer):
        items = ResourceGatherer(graph).gather("me", 1)
        corpus = CorpusAnalyzer(analyzer).analyze_evidence(graph, items)
        assert set(corpus) == {i.node_id for i in items}


class TestCrossPostFiltering:
    def test_marked_resources_skipped(self, analyzer):
        store = PlatformStore(Platform.LINKEDIN)
        me = AccountRecord(profile=_profile("me", Platform.LINKEDIN))
        store.add_account(me)
        store.add_resource(Resource(
            resource_id="native", platform=Platform.LINKEDIN,
            text="shipping a new backend service today", timestamp=1))
        store.add_resource(Resource(
            resource_id="mirrored", platform=Platform.LINKEDIN,
            text="great swimming race tonight via twitter", timestamp=2))
        me.created.extend(["native", "mirrored"])
        client = PlatformClient(store, AuthToken("t", "me"))
        graph = ResourceExtractor().extract([client])
        ids = {rid for rid, _ in graph.direct_resources("me")}
        assert ids == {"native"}

    def test_marker_must_be_suffix(self, analyzer):
        store = PlatformStore(Platform.LINKEDIN)
        me = AccountRecord(profile=_profile("me", Platform.LINKEDIN))
        store.add_account(me)
        store.add_resource(Resource(
            resource_id="mention", platform=Platform.LINKEDIN,
            text="i heard via twitter that the match was great", timestamp=1))
        me.created.append("mention")
        client = PlatformClient(store, AuthToken("t", "me"))
        graph = ResourceExtractor().extract([client])
        assert {rid for rid, _ in graph.direct_resources("me")} == {"mention"}

    def test_custom_markers(self, analyzer):
        store = PlatformStore(Platform.LINKEDIN)
        me = AccountRecord(profile=_profile("me", Platform.LINKEDIN))
        store.add_account(me)
        store.add_resource(Resource(
            resource_id="r", platform=Platform.LINKEDIN,
            text="hello from my blog", timestamp=1))
        me.created.append("r")
        client = PlatformClient(store, AuthToken("t", "me"))
        graph = ResourceExtractor(cross_post_markers=("from my blog",)).extract([client])
        assert graph.direct_resources("me") == ()

    def test_generator_emits_cross_posts(self, tiny_dataset):
        """The synthetic LinkedIn store contains mirrored tweets, and the
        crawled graph contains none of them."""
        from repro.synthetic.network_builder import CROSS_POST_MARKER

        store = tiny_dataset.networks.stores[Platform.LINKEDIN]
        mirrored = [r for r in store.resources.values()
                    if r.text.endswith(CROSS_POST_MARKER)]
        assert mirrored  # generator produced some
        graph = tiny_dataset.graphs[Platform.LINKEDIN]
        crawled_texts = {r.resource_id for r in graph.resources()}
        assert not any(r.resource_id in crawled_texts for r in mirrored)


class TestAnalyzeEvidenceLanguage:
    def test_platform_language_annotation_respected(self, analyzer):
        """A resource carrying a platform language annotation must be
        classified identically by analyze_graph and analyze_evidence."""
        from repro.socialgraph.graph import SocialGraph
        from repro.socialgraph.metamodel import RelationKind

        g = SocialGraph(Platform.TWITTER)
        g.add_profile(_profile("u", Platform.TWITTER))
        # short text the language identifier alone cannot pin down;
        # the platform says it is Italian
        g.add_resource(Resource(resource_id="r_it", platform=Platform.TWITTER,
                                text="forza ragazzi", language="it"))
        g.link_resource("u", "r_it", RelationKind.CREATES)

        corpus_analyzer = CorpusAnalyzer(analyzer)
        full = corpus_analyzer.analyze_graph(g)
        items = ResourceGatherer(g).gather("u", 1)
        subset = corpus_analyzer.analyze_evidence(g, items)
        assert subset["r_it"].language == "it"
        assert subset["r_it"] == full["r_it"]


class TestParallelCorpusAnalyzer:
    def test_workers_1_is_serial_path(self, graph, analyzer):
        from repro.extraction.crawler import ParallelCorpusAnalyzer

        serial = CorpusAnalyzer(analyzer).analyze_graph(graph)
        parallel = ParallelCorpusAnalyzer(analyzer, workers=1).analyze_graph(graph)
        assert parallel == serial
        assert list(parallel) == list(serial)

    def test_parallel_matches_serial(self, tiny_dataset):
        from repro.extraction.crawler import ParallelCorpusAnalyzer

        graph = tiny_dataset.merged_graph
        analyzer = tiny_dataset.analyzer
        serial = CorpusAnalyzer(analyzer).analyze_graph(graph)
        parallel = ParallelCorpusAnalyzer(
            analyzer, workers=2, chunk_size=128
        ).analyze_graph(graph)
        assert list(parallel) == list(serial)  # node order fixes index order
        assert parallel == serial

    def test_invalid_workers(self, analyzer):
        from repro.extraction.crawler import ParallelCorpusAnalyzer

        with pytest.raises(ValueError):
            ParallelCorpusAnalyzer(analyzer, workers=0)
