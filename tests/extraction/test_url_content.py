"""Unit tests for the synthetic web and URL content extraction."""

import pytest

from repro.extraction.url_content import SyntheticWeb, UrlContentExtractor, WebPage


@pytest.fixture
def web():
    web = SyntheticWeb()
    web.publish(WebPage(
        url="http://ex/1",
        title="Swimming records",
        main_text="phelps broke the freestyle record at the olympics",
        boilerplate="home login subscribe",
    ))
    return web


class TestSyntheticWeb:
    def test_fetch(self, web):
        page = web.fetch("http://ex/1")
        assert page.title == "Swimming records"

    def test_dead_link(self, web):
        assert web.fetch("http://ex/404") is None

    def test_duplicate_publish_rejected(self, web):
        with pytest.raises(ValueError):
            web.publish(WebPage(url="http://ex/1", title="x", main_text="y"))

    def test_contains_and_len(self, web):
        assert "http://ex/1" in web
        assert len(web) == 1

    def test_html_rendering(self, web):
        html = web.fetch("http://ex/1").html()
        assert "<article>" in html
        assert "subscribe" in html


class TestUrlContentExtractor:
    def test_extracts_main_text_not_boilerplate(self, web):
        extractor = UrlContentExtractor(web)
        text = extractor.extract("http://ex/1")
        assert "freestyle record" in text
        assert "subscribe" not in text

    def test_title_included(self, web):
        assert "Swimming records" in UrlContentExtractor(web).extract("http://ex/1")

    def test_dead_link_empty(self, web):
        assert UrlContentExtractor(web).extract("http://ex/404") == ""

    def test_caching_avoids_refetch(self, web):
        extractor = UrlContentExtractor(web)
        extractor.extract("http://ex/1")
        extractor.extract("http://ex/1")
        assert extractor.fetch_count == 1

    def test_max_chars_truncation(self, web):
        extractor = UrlContentExtractor(web, max_chars=10)
        assert len(extractor.extract("http://ex/1")) == 10

    def test_callable_interface(self, web):
        extractor = UrlContentExtractor(web)
        assert extractor("http://ex/1") == extractor.extract("http://ex/1")

    def test_invalid_max_chars(self, web):
        with pytest.raises(ValueError):
            UrlContentExtractor(web, max_chars=0)
