"""Unit tests for privacy policies."""

from repro.extraction.privacy import PrivacyPolicy


class TestPrivacyPolicy:
    def test_open(self):
        policy = PrivacyPolicy.open()
        assert policy.profile_visible
        assert policy.resources_visible
        assert policy.relationships_visible

    def test_closed(self):
        policy = PrivacyPolicy.closed()
        assert not policy.profile_visible
        assert not policy.resources_visible
        assert not policy.relationships_visible

    def test_profile_only(self):
        policy = PrivacyPolicy.profile_only()
        assert policy.profile_visible
        assert not policy.resources_visible
        assert not policy.relationships_visible

    def test_default_is_open(self):
        assert PrivacyPolicy() == PrivacyPolicy.open()

    def test_frozen(self):
        import pytest

        with pytest.raises(AttributeError):
            PrivacyPolicy().profile_visible = False
