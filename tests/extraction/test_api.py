"""Unit tests for the simulated platform API clients."""

import pytest

from repro.extraction.api import (
    AccountRecord,
    AuthToken,
    ContainerRecord,
    PermissionDenied,
    PlatformClient,
    PlatformStore,
    RateLimitExceeded,
    UnknownAccount,
)
from repro.extraction.privacy import PrivacyPolicy
from repro.socialgraph.metamodel import Platform, Resource, ResourceContainer, UserProfile
from repro.socialgraph.platforms import PlatformCapabilities


def _profile(pid, platform=Platform.TWITTER):
    return UserProfile(profile_id=pid, platform=platform, display_name=pid)


@pytest.fixture
def store():
    store = PlatformStore(Platform.TWITTER)
    me = AccountRecord(profile=_profile("me"))
    friend = AccountRecord(profile=_profile("friend"),
                           privacy=PrivacyPolicy.closed())
    star = AccountRecord(profile=_profile("star"))
    store.add_account(me)
    store.add_account(friend)
    store.add_account(star)
    me.follows.append("star")
    me.friends.append("friend")
    for i in range(5):
        rid = f"r{i}"
        store.add_resource(Resource(resource_id=rid, platform=Platform.TWITTER,
                                    text=f"tweet {i}", timestamp=i))
        me.created.append(rid)
        me.owned.append(rid)
    return store


@pytest.fixture
def client(store):
    return PlatformClient(store, AuthToken("tok", "me"))


class TestAuth:
    def test_token_for_unknown_account_rejected(self, store):
        with pytest.raises(UnknownAccount):
            PlatformClient(store, AuthToken("tok", "ghost"))

    def test_subject_id(self, client):
        assert client.subject_id == "me"

    def test_empty_token_rejected(self):
        with pytest.raises(ValueError):
            AuthToken("", "me")


class TestPrivacy:
    def test_own_profile_always_visible(self, store):
        closed_client = PlatformClient(store, AuthToken("t", "friend"))
        assert closed_client.get_profile("friend").profile_id == "friend"

    def test_closed_profile_denied(self, client):
        with pytest.raises(PermissionDenied):
            client.get_profile("friend")

    def test_closed_resources_denied(self, client):
        with pytest.raises(PermissionDenied):
            client.get_resources("friend")

    def test_closed_relationships_denied(self, client):
        with pytest.raises(PermissionDenied):
            client.get_friends("friend")

    def test_open_profile_visible(self, client):
        assert client.get_profile("star").display_name == "star"


class TestPagination:
    def test_pages_respect_page_size(self, store):
        caps = PlatformCapabilities(
            platform=Platform.TWITTER, has_containers=False,
            bidirectional_relations=False, profile_richness=0.1,
            friend_visibility=1.0, page_size=2, rate_limit=100,
        )
        client = PlatformClient(store, AuthToken("t", "me"), capabilities=caps)
        page1 = client.get_resources("me")
        assert len(page1.items) == 2
        assert page1.next_cursor == 2
        page2 = client.get_resources("me", cursor=page1.next_cursor)
        assert len(page2.items) == 2
        page3 = client.get_resources("me", cursor=page2.next_cursor)
        assert len(page3.items) == 1
        assert page3.next_cursor is None

    def test_relation_selector(self, client):
        assert len(client.get_resources("me", relation="created").items) == 5
        assert client.get_resources("me", relation="annotated").items == ()

    def test_unknown_relation(self, client):
        with pytest.raises(ValueError):
            client.get_resources("me", relation="liked")


class TestRateLimit:
    def test_limit_enforced(self, store):
        caps = PlatformCapabilities(
            platform=Platform.TWITTER, has_containers=False,
            bidirectional_relations=False, profile_richness=0.1,
            friend_visibility=1.0, page_size=10, rate_limit=3,
        )
        client = PlatformClient(store, AuthToken("t", "me"), capabilities=caps)
        for _ in range(3):
            client.get_profile("me")
        with pytest.raises(RateLimitExceeded):
            client.get_profile("me")
        assert client.rate_limit_hits == 1

    def test_window_reset(self, store):
        caps = PlatformCapabilities(
            platform=Platform.TWITTER, has_containers=False,
            bidirectional_relations=False, profile_richness=0.1,
            friend_visibility=1.0, page_size=10, rate_limit=1,
        )
        client = PlatformClient(store, AuthToken("t", "me"), capabilities=caps)
        client.get_profile("me")
        client.wait_for_window_reset()
        client.get_profile("me")  # no exception
        assert client.request_count == 2


class TestContainers:
    def test_twitter_has_no_containers(self, client):
        assert client.get_containers("me") == ()

    def test_facebook_containers_and_contents(self):
        store = PlatformStore(Platform.FACEBOOK)
        store.add_account(AccountRecord(profile=_profile("me", Platform.FACEBOOK)))
        container = ResourceContainer(
            container_id="g1", platform=Platform.FACEBOOK, name="swimmers")
        record = ContainerRecord(container=container)
        store.add_container(record)
        store.accounts["me"].containers.append("g1")
        store.add_resource(Resource(resource_id="p1", platform=Platform.FACEBOOK,
                                    text="post", timestamp=1))
        record.resource_ids.append("p1")
        client = PlatformClient(store, AuthToken("t", "me"))
        assert client.get_containers("me")[0].name == "swimmers"
        page = client.get_container_resources("g1")
        assert [r.resource_id for r in page.items] == ["p1"]

    def test_unknown_container(self, client):
        with pytest.raises(UnknownAccount):
            client.get_container_resources("nope")


class TestStoreValidation:
    def test_duplicate_account(self, store):
        with pytest.raises(ValueError):
            store.add_account(AccountRecord(profile=_profile("me")))

    def test_platform_mismatch(self, store):
        with pytest.raises(ValueError):
            store.add_account(AccountRecord(profile=_profile("x", Platform.FACEBOOK)))

    def test_duplicate_resource(self, store):
        with pytest.raises(ValueError):
            store.add_resource(Resource(resource_id="r0", platform=Platform.TWITTER, text="x"))
