"""Every example script must execute end to end.

Examples are user-facing documentation; a broken one is a broken
promise. Each test imports the example module and runs its ``main()``,
checking for the landmark output lines.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def _run_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


class TestExamples:
    def test_quickstart(self, capsys):
        _run_example("quickstart")
        out = capsys.readouterr().out
        assert "expertise need:" in out
        assert "rank" in out

    def test_custom_network(self, capsys):
        _run_example("custom_network")
        out = capsys.readouterr().out
        # the paper's Fig.-1 ordering
        assert out.index("alice") < out.index("charlie") < out.index("bob")
        assert "Peggy is absent" in out

    def test_crowdsearch_routing(self, capsys):
        _run_example("crowdsearch_routing")
        out = capsys.readouterr().out
        assert "restaurants in Milan" in out
        assert "ask " in out

    def test_crowd_pipeline(self, capsys):
        _run_example("crowd_pipeline")
        out = capsys.readouterr().out
        assert "top experts:" in out
        assert "jury" in out
        assert "routing strategies" in out

    def test_streaming_updates(self, capsys):
        _run_example("streaming_updates")
        out = capsys.readouterr().out
        assert "new post 4" in out
        assert "resources indexed overall" in out

    def test_http_client(self, capsys):
        _run_example("http_client")
        out = capsys.readouterr().out
        assert "GET /readyz -> 200" in out
        assert "rank 1:" in out
        assert "POST /admin/reload -> 200" in out
        assert "now serving generation 2" in out
        assert "gateway stopped" in out

    def test_domain_analysis(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        _run_example("domain_analysis")
        out = capsys.readouterr().out
        assert "best net @d2" in out

    @pytest.mark.slow
    def test_reproduce_paper(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        _run_example("reproduce_paper")
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Ablations" in out
