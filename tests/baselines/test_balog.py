"""Unit tests for the Balog Model 1 / Model 2 baselines."""

import math

import pytest

from repro.baselines.balog import BalogConfig, CandidateModelFinder, DocumentModelFinder
from repro.socialgraph.graph import SocialGraph
from repro.socialgraph.metamodel import Platform, RelationKind, Resource, UserProfile


@pytest.fixture(scope="module")
def graph():
    """alice: two swimming posts; bob: one guitar post; carol: silence."""
    g = SocialGraph(Platform.TWITTER)
    for pid in ("alice", "bob", "carol"):
        g.add_profile(
            UserProfile(profile_id=pid, platform=Platform.TWITTER, display_name=pid)
        )
    posts = {
        "a1": ("alice", "freestyle swimming training at the pool every morning"),
        "a2": ("alice", "great swimming race and a gold medal in freestyle"),
        "b1": ("bob", "playing guitar and writing a new rock song tonight"),
    }
    for rid, (owner, text) in posts.items():
        g.add_resource(
            Resource(resource_id=rid, platform=Platform.TWITTER, text=text, language="en")
        )
        g.link_resource(owner, rid, RelationKind.CREATES)
    return g


CANDIDATES = ("alice", "bob", "carol")


@pytest.fixture(scope="module", params=[CandidateModelFinder, DocumentModelFinder])
def finder(request, graph, analyzer):
    return request.param.build(graph, CANDIDATES, analyzer, BalogConfig())


class TestBalogModels:
    def test_topical_candidate_wins(self, finder):
        ranked = finder.find_experts("freestyle swimming")
        assert ranked[0].candidate_id == "alice"

    def test_off_topic_candidate_wins_their_domain(self, finder):
        ranked = finder.find_experts("rock guitar song")
        assert ranked[0].candidate_id == "bob"

    def test_no_match_empty(self, finder):
        assert finder.find_experts("quantum chromodynamics") == []

    def test_scores_positive_and_sorted(self, finder):
        ranked = finder.find_experts("swimming")
        scores = [e.score for e in ranked]
        assert all(s > 0 for s in scores)
        assert scores == sorted(scores, reverse=True)

    def test_top_score_is_one(self, finder):
        ranked = finder.find_experts("swimming pool")
        assert ranked[0].score == pytest.approx(1.0)

    def test_top_k(self, finder):
        assert len(finder.find_experts("swimming", top_k=1)) == 1

    def test_empty_query(self, finder):
        assert finder.find_experts("") == []


class TestBalogConfig:
    def test_smoothing_bounds(self):
        with pytest.raises(ValueError):
            BalogConfig(smoothing=0.0)
        with pytest.raises(ValueError):
            BalogConfig(smoothing=1.0)

    def test_distance_bounds(self):
        with pytest.raises(ValueError):
            BalogConfig(max_distance=5)

    def test_empty_candidates_rejected(self, graph, analyzer):
        with pytest.raises(ValueError):
            CandidateModelFinder.build(graph, [], analyzer)


class TestModelDifferences:
    def test_model1_pools_model2_sums(self, graph, analyzer):
        """Both must rank alice first, but with different score
        profiles — they are genuinely different estimators."""
        m1 = CandidateModelFinder.build(graph, CANDIDATES, analyzer)
        m2 = DocumentModelFinder.build(graph, CANDIDATES, analyzer)
        q = "freestyle swimming gold"
        r1 = {e.candidate_id: e.score for e in m1.find_experts(q)}
        r2 = {e.candidate_id: e.score for e in m2.find_experts(q)}
        assert set(r1) == set(r2)
        # relative gap between alice and bob differs across models
        if "bob" in r1 and "bob" in r2:
            assert not math.isclose(r1["bob"], r2["bob"], rel_tol=1e-3)

    def test_smoothing_flattens_scores(self, graph, analyzer):
        sharp = CandidateModelFinder.build(
            graph, CANDIDATES, analyzer, BalogConfig(smoothing=0.1)
        )
        flat = CandidateModelFinder.build(
            graph, CANDIDATES, analyzer, BalogConfig(smoothing=0.9)
        )
        q = "freestyle swimming"
        sharp_scores = {e.candidate_id: e.score for e in sharp.find_experts(q)}
        flat_scores = {e.candidate_id: e.score for e in flat.find_experts(q)}
        if "bob" in sharp_scores and "bob" in flat_scores:
            # heavier collection smoothing narrows the alice/bob gap
            assert flat_scores["bob"] > sharp_scores["bob"]


class TestOnTinyDataset:
    def test_models_beat_random_on_dataset(self, tiny_dataset):
        from repro.evaluation.baselines import random_baseline
        from repro.evaluation.runner import evaluate_finder

        for model in (CandidateModelFinder, DocumentModelFinder):
            finder = model.build(
                tiny_dataset.merged_graph,
                tiny_dataset.candidates_for(None),
                tiny_dataset.analyzer,
                BalogConfig(),
                corpus=tiny_dataset.corpus,
            )
            result = evaluate_finder(tiny_dataset, finder)
            random = random_baseline(
                tiny_dataset.person_ids,
                tiny_dataset.queries,
                tiny_dataset.ground_truth,
                seed=1,
            )
            assert result.summary().map > random.map
