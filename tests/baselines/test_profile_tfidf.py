"""Unit tests for the profile-only TF-IDF baseline."""

import pytest

from repro.baselines.profile_tfidf import ProfileTfidfFinder
from repro.socialgraph.graph import SocialGraph
from repro.socialgraph.metamodel import Platform, UserProfile


@pytest.fixture(scope="module")
def graph():
    g = SocialGraph(Platform.LINKEDIN)
    profiles = {
        "dev": "senior software engineer python database backend development",
        "chef": "professional cook italian cuisine restaurant kitchen recipes",
        "blank": "",
    }
    for pid, text in profiles.items():
        g.add_profile(
            UserProfile(
                profile_id=pid, platform=Platform.LINKEDIN, display_name=pid, text=text
            )
        )
    return g


@pytest.fixture(scope="module")
def finder(graph, analyzer):
    return ProfileTfidfFinder.build(graph, ("dev", "chef", "blank"), analyzer)


class TestProfileTfidf:
    def test_matches_profile_topic(self, finder):
        ranked = finder.find_experts("python database engineer")
        assert ranked[0].candidate_id == "dev"

    def test_other_profile(self, finder):
        ranked = finder.find_experts("best italian restaurant cuisine")
        assert ranked[0].candidate_id == "chef"

    def test_blank_profile_never_retrieved(self, finder):
        for query in ("python", "cuisine", "anything"):
            assert all(e.candidate_id != "blank" for e in finder.find_experts(query))

    def test_cosine_bounded(self, finder):
        for e in finder.find_experts("python database engineer backend"):
            assert 0.0 < e.score <= 1.0 + 1e-9

    def test_empty_query(self, finder):
        assert finder.find_experts("") == []

    def test_no_match(self, finder):
        assert finder.find_experts("astrophysics telescope") == []

    def test_top_k(self, finder):
        assert len(finder.find_experts("professional", top_k=1)) <= 1

    def test_multi_profile_candidates(self, graph, analyzer):
        finder = ProfileTfidfFinder.build(
            graph, {"both": ("dev", "chef")}, analyzer
        )
        ranked = finder.find_experts("python cuisine")
        assert ranked[0].candidate_id == "both"

    def test_empty_candidates_rejected(self, graph, analyzer):
        with pytest.raises(ValueError):
            ProfileTfidfFinder.build(graph, [], analyzer)

    def test_behavioural_system_beats_profiles_on_dataset(self, tiny_dataset):
        """The paper's core claim, in miniature: behaviour-based finding
        beats profile-only matching."""
        from repro.core.config import FinderConfig
        from repro.core.expert_finder import ExpertFinder
        from repro.evaluation.runner import evaluate_finder

        profile_finder = ProfileTfidfFinder.build(
            tiny_dataset.merged_graph,
            tiny_dataset.candidates_for(None),
            tiny_dataset.analyzer,
            corpus=tiny_dataset.corpus,
        )
        system = ExpertFinder.build(
            tiny_dataset.merged_graph,
            tiny_dataset.candidates_for(None),
            tiny_dataset.analyzer,
            FinderConfig(),
            corpus=tiny_dataset.corpus,
        )
        profile_map = evaluate_finder(tiny_dataset, profile_finder).summary().map
        system_map = evaluate_finder(tiny_dataset, system).summary().map
        assert system_map > profile_map
