"""Tests for the per-figure/table experiment drivers on the TINY dataset.

These validate mechanics (shapes, bounds, rendering) — the paper-shape
assertions on the SMALL dataset live in the benchmark suite, where the
statistics are meaningful.
"""

import pytest

from repro.experiments import (
    ablations,
    fig5_dataset,
    fig6_window,
    fig7_alpha,
    fig10_trust,
    fig11_delta,
    tab2_fig8_friends,
    tab3_fig9_networks,
    tab4_domains,
)
from repro.synthetic.vocab import DOMAINS


class TestFig5(object):
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return fig5_dataset.run(tiny_context)

    def test_three_networks(self, result):
        assert [d.network for d in result.distributions] == ["FB", "TW", "LI"]

    def test_candidate_counts(self, result, tiny_context):
        for dist in result.distributions:
            assert dist.candidates == len(tiny_context.dataset.people)

    def test_distance0_equals_candidates(self, result):
        for dist in result.distributions:
            assert dist.resources_by_distance[0] == dist.candidates

    def test_linkedin_fewest(self, result):
        totals = {d.network: d.total_resources for d in result.distributions}
        assert totals["LI"] == min(totals.values())

    def test_domain_stats_cover_domains(self, result):
        assert [s.domain for s in result.domain_stats] == list(DOMAINS)

    def test_render(self, result):
        text = result.render()
        assert "Fig. 5a" in text and "Fig. 5b" in text


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return fig6_window.run(tiny_context)

    def test_sweep_shape(self, result):
        assert set(result.sweeps) == {1, 2}
        for per_fraction in result.sweeps.values():
            assert len(per_fraction) == len(fig6_window.WINDOW_FRACTIONS)

    def test_series_accessor(self, result):
        series = result.series("map", 2)
        assert len(series) == len(fig6_window.WINDOW_FRACTIONS)
        assert all(0.0 <= v <= 1.0 for v in series)

    def test_fixed_window_present(self, result):
        assert set(result.fixed_100) == {1, 2}

    def test_render(self, result):
        assert "Fig. 6" in result.render()


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return fig7_alpha.run(tiny_context)

    def test_grid(self, result):
        assert set(result.sweeps) == {0, 1, 2}
        for per_alpha in result.sweeps.values():
            assert len(per_alpha) == 11

    def test_plateau_spread_finite(self, result):
        assert result.plateau_spread("map", 2) >= 0.0

    def test_render(self, result):
        assert "Fig. 7" in result.render()


class TestTab2:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return tab2_fig8_friends.run(tiny_context)

    def test_four_rows(self, result):
        assert set(result.table) == {(1, False), (1, True), (2, False), (2, True)}

    def test_curves_shape(self, result):
        for curve in result.eleven_point.values():
            assert len(curve) == 11
        for curve in result.dcg_curves.values():
            assert len(curve) == len(tab2_fig8_friends.DCG_CUTS)

    def test_render(self, result):
        assert "Table 2" in result.render()


class TestTab3:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return tab3_fig9_networks.run(tiny_context)

    def test_twelve_cells(self, result):
        assert len(result.table) == 12

    def test_distance_2_beats_distance_0(self, result):
        # the headline finding holds even on the tiny dataset
        assert result.summary("All", 2).map > result.summary("All", 0).map

    def test_curves_for_all(self, result):
        assert set(result.eleven_point_all) == {0, 1, 2}
        assert set(result.dcg_all) == {0, 1, 2}

    def test_render(self, result):
        text = result.render()
        assert "Table 3" in text and "Random" in text


class TestTab4:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return tab4_domains.run(tiny_context)

    def test_full_grid(self, result):
        assert set(result.table) == set(DOMAINS)
        for per_network in result.table.values():
            assert set(per_network) == {"All", "FB", "TW", "LI"}
            for per_distance in per_network.values():
                assert set(per_distance) == {0, 1, 2}

    def test_best_network(self, result):
        best = result.best_network("sport", 2)
        assert best in ("FB", "TW", "LI")

    def test_render(self, result):
        assert "Table 4" in result.render()


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return fig10_trust.run(tiny_context)

    def test_one_point_per_user(self, result, tiny_context):
        assert len(result.users) == len(tiny_context.dataset.people)

    def test_f1_bounds(self, result):
        assert all(0.0 <= u.f1 <= 1.0 for u in result.users)

    def test_resources_positive(self, result):
        assert all(u.resources > 0 for u in result.users)

    def test_summary_stats(self, result):
        assert 0.0 <= result.median_f1 <= 1.0
        assert result.count_above(0.0) >= result.count_above(0.5)

    def test_render(self, result):
        assert "Fig. 10" in result.render()


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return fig11_delta.run(tiny_context)

    def test_three_distances(self, result):
        assert set(result.deltas) == {0, 1, 2}

    def test_thirty_queries_each(self, result, tiny_context):
        for deltas in result.deltas.values():
            assert len(deltas) == len(tiny_context.dataset.queries)

    def test_distance0_under_retrieves(self, result):
        assert result.average_delta(0) < result.average_delta(2)

    def test_render(self, result):
        assert "Fig. 11" in result.render()


class TestAblations:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return ablations.run(tiny_context)

    def test_all_variants_present(self, result):
        assert set(result.table) == set(ablations.VARIANTS)

    def test_delta_map_zero_for_paper(self, result):
        assert result.delta_map("paper") == 0.0

    def test_render(self, result):
        assert "Ablations" in result.render()
