"""Tests for the shared experiment context."""

import pytest

from repro.experiments.context import ExperimentContext, scale_from_env, shared_context
from repro.synthetic.dataset import DatasetScale


class TestScaleFromEnv:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_from_env() is DatasetScale.SMALL
        assert scale_from_env(default=DatasetScale.TINY) is DatasetScale.TINY

    def test_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert scale_from_env() is DatasetScale.TINY

    def test_case_and_whitespace(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "  PAPER ")
        assert scale_from_env() is DatasetScale.PAPER

    def test_invalid_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "gigantic")
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            scale_from_env()


class TestContext:
    def test_create_builds_dataset(self):
        context = ExperimentContext.create(DatasetScale.TINY, seed=7)
        assert context.dataset.scale is DatasetScale.TINY
        assert context.runner.dataset is context.dataset

    def test_baseline_cached(self, tiny_context):
        first = tiny_context.baseline
        second = tiny_context.baseline
        assert first is second

    def test_baseline_curves_shapes(self, tiny_context):
        eleven, dcg = tiny_context.baseline_curves((5, 10))
        assert len(eleven) == 11
        assert len(dcg) == 2

    def test_shared_context_memoized(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        shared_context.cache_clear()
        a = shared_context("tiny", 7)
        b = shared_context("tiny", 7)
        assert a is b
        shared_context.cache_clear()
