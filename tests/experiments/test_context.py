"""Tests for the shared experiment context."""

import pytest

from repro.experiments.context import ExperimentContext, scale_from_env, shared_context
from repro.synthetic.dataset import DatasetScale


class TestScaleFromEnv:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_from_env() is DatasetScale.SMALL
        assert scale_from_env(default=DatasetScale.TINY) is DatasetScale.TINY

    def test_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert scale_from_env() is DatasetScale.TINY

    def test_case_and_whitespace(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "  PAPER ")
        assert scale_from_env() is DatasetScale.PAPER

    def test_invalid_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "gigantic")
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            scale_from_env()


class TestContext:
    def test_create_builds_dataset(self):
        context = ExperimentContext.create(DatasetScale.TINY, seed=7)
        assert context.dataset.scale is DatasetScale.TINY
        assert context.runner.dataset is context.dataset

    def test_baseline_cached(self, tiny_context):
        first = tiny_context.baseline
        second = tiny_context.baseline
        assert first is second

    def test_baseline_curves_shapes(self, tiny_context):
        eleven, dcg = tiny_context.baseline_curves((5, 10))
        assert len(eleven) == 11
        assert len(dcg) == 2

    def test_shared_context_memoized(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        shared_context.cache_clear()
        a = shared_context("tiny", 7)
        b = shared_context("tiny", 7)
        assert a is b
        shared_context.cache_clear()


class TestWorkersFromEnv:
    def test_default_when_unset(self, monkeypatch):
        from repro.experiments.context import workers_from_env

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert workers_from_env() == 1
        assert workers_from_env(default=4) == 4

    def test_reads_env(self, monkeypatch):
        from repro.experiments.context import workers_from_env

        monkeypatch.setenv("REPRO_WORKERS", " 3 ")
        assert workers_from_env() == 3

    @pytest.mark.parametrize("value", ["zero", "0", "-2", "1.5"])
    def test_invalid_values(self, monkeypatch, value):
        from repro.experiments.context import workers_from_env

        monkeypatch.setenv("REPRO_WORKERS", value)
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            workers_from_env()


class TestSharedContextScaleResolution:
    def test_env_resolved_before_cache_lookup(self, monkeypatch):
        """A REPRO_SCALE change must not be masked by a context cached
        under the default '' key at the old scale."""
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        shared_context.cache_clear()
        try:
            first = shared_context()
            assert first.dataset.scale is DatasetScale.TINY
            # if '' were the cache key, the stale TINY context would be
            # returned and the invalid scale never noticed
            monkeypatch.setenv("REPRO_SCALE", "gigantic")
            with pytest.raises(ValueError, match="REPRO_SCALE"):
                shared_context()
        finally:
            shared_context.cache_clear()

    def test_env_and_explicit_scale_share_cache_entry(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        shared_context.cache_clear()
        try:
            assert shared_context() is shared_context("tiny")
        finally:
            shared_context.cache_clear()
