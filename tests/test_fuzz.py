"""Fuzz tests: the analysis stack must never crash on hostile input.

Social text is adversarial by nature — emoji, RTL scripts, broken
markup, zero-width characters, megabyte pastes. Every entry point that
accepts raw text has to degrade gracefully.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.entity.annotator import EntityAnnotator
from repro.index.analyzer import ResourceAnalyzer
from repro.synthetic.seeds import build_knowledge_base
from repro.textproc.langid import LanguageIdentifier
from repro.textproc.pipeline import TextPipeline

_pipeline = TextPipeline()
_annotator = EntityAnnotator(build_knowledge_base())
_analyzer = ResourceAnalyzer(_pipeline, _annotator)
_lid = LanguageIdentifier()

# anything unicode, including whatever weirdness hypothesis emits
any_text = st.text(max_size=400)
nasty_text = st.one_of(
    any_text,
    st.just("<" * 200 + "b>" * 100),
    st.just("@" * 300),
    st.just("#tag" * 150),
    st.just("http://" + "a" * 300),
    st.just("‮‭ reversed  control"),
    st.just("🏊‍♂️ 🥇 emoji soup 🏆" * 40),
    st.just("&amp;" * 200),
)


@settings(max_examples=150, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(nasty_text)
def test_pipeline_never_crashes(text):
    out = _pipeline.analyze(text)
    assert isinstance(out.language, str)
    assert all(t == t.lower() for t in out.tokens)


@settings(max_examples=100)
@given(nasty_text)
def test_annotator_never_crashes(text):
    for annotation in _annotator.annotate(text):
        assert 0.0 <= annotation.d_score <= 1.0


@settings(max_examples=100)
@given(nasty_text)
def test_analyzer_never_crashes(text):
    out = _analyzer.analyze("fuzz", text)
    assert all(count > 0 for count in out.term_counts.values())
    assert all(
        count > 0 and 0.0 <= d_score <= 1.0
        for count, d_score in out.entity_counts.values()
    )


@settings(max_examples=100)
@given(nasty_text)
def test_langid_never_crashes(text):
    lang = _lid.identify(text)
    assert lang in set(_lid.languages) | {LanguageIdentifier.UNKNOWN}


@settings(max_examples=60)
@given(any_text, st.floats(min_value=0.0, max_value=1.0))
def test_finder_query_never_crashes(tiny_finder_fuzz, text, alpha):
    ranked = tiny_finder_fuzz.find_experts(text, alpha=alpha)
    scores = [e.score for e in ranked]
    assert scores == sorted(scores, reverse=True)


@pytest.fixture(scope="module")
def tiny_finder_fuzz(tiny_dataset):
    from repro.core.config import FinderConfig
    from repro.core.expert_finder import ExpertFinder

    return ExpertFinder.build(
        tiny_dataset.merged_graph,
        tiny_dataset.candidates_for(None),
        tiny_dataset.analyzer,
        FinderConfig(),
        corpus=tiny_dataset.corpus,
    )
