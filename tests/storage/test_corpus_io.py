"""Round-trip tests for corpus serialization."""

from repro.index.analyzer import AnalyzedResource
from repro.storage.corpus_io import load_corpus, save_corpus


class TestCorpusRoundTrip:
    def test_simple_roundtrip(self, tmp_path):
        corpus = {
            "d1": AnalyzedResource(
                doc_id="d1",
                language="en",
                term_counts={"swim": 2, "pool": 1},
                entity_counts={"wiki/Phelps": (1, 0.875)},
            ),
            "d2": AnalyzedResource(doc_id="d2", language="it"),
        }
        path = tmp_path / "c.jsonl"
        assert save_corpus(corpus, path) == 2
        loaded = load_corpus(path)
        assert set(loaded) == {"d1", "d2"}
        assert loaded["d1"].term_counts == {"swim": 2, "pool": 1}
        assert loaded["d1"].entity_counts == {"wiki/Phelps": (1, 0.875)}
        assert loaded["d2"].language == "it"
        assert loaded["d2"].term_counts == {}

    def test_tiny_dataset_corpus_roundtrip(self, tiny_dataset, tmp_path):
        path = tmp_path / "corpus.jsonl.gz"
        save_corpus(tiny_dataset.corpus, path)
        loaded = load_corpus(path)
        assert set(loaded) == set(tiny_dataset.corpus)
        for node_id, original in tiny_dataset.corpus.items():
            restored = loaded[node_id]
            assert restored.language == original.language
            assert restored.term_counts == original.term_counts
            assert restored.entity_counts == original.entity_counts

    def test_entity_tuple_types(self, tmp_path):
        corpus = {
            "d": AnalyzedResource(
                doc_id="d", language="en", entity_counts={"wiki/X": (3, 0.5)}
            )
        }
        path = tmp_path / "t.jsonl"
        save_corpus(corpus, path)
        count, d_score = load_corpus(path)["d"].entity_counts["wiki/X"]
        assert isinstance(count, int)
        assert isinstance(d_score, float)
