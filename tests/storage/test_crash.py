"""Crash-injection tests for finder snapshots.

Two failure families:

* **corruption at rest** — every snapshot file is truncated at several
  byte offsets and bit-flipped; ``load_finder`` must raise
  :class:`StorageFormatError` naming the offending path, never a bare
  ``JSONDecodeError`` / ``struct.error`` / ``EOFError``;
* **crash mid-save** — ``os.replace`` is made to fail at the k-th call
  during a re-save (the moment a SIGKILL would interrupt the rename
  dance); the previous snapshot must stay loadable with identical
  rankings for every k.
"""

import os
import shutil

import pytest

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.storage.jsonl import StorageFormatError
from repro.storage.snapshot import load_finder, save_finder


def _generation_dir(snapshot_dir):
    lines = (snapshot_dir / "CURRENT").read_text(encoding="utf-8").splitlines()
    return snapshot_dir / lines[1]


def _snapshot_files(directory):
    return sorted(
        p for p in directory.rglob("*") if p.is_file()
    )


def _cuts(size):
    return sorted({0, 1, size // 2, max(size - 1, 0)})


@pytest.fixture(scope="module")
def built_finder(tiny_dataset):
    return ExpertFinder.build(
        tiny_dataset.merged_graph,
        tiny_dataset.candidates_for(None),
        tiny_dataset.analyzer,
        FinderConfig(),
        corpus=tiny_dataset.corpus,
    )


@pytest.fixture(scope="module")
def queries(tiny_dataset):
    return tiny_dataset.queries[:3]


class TestCorruptionAtRest:
    @pytest.mark.parametrize("snapshot_format", ["v3", "jsonl"])
    def test_truncation_of_every_file_is_loud(
        self, built_finder, tiny_dataset, queries, tmp_path, snapshot_format
    ):
        pristine = tmp_path / "pristine"
        save_finder(built_finder, pristine, snapshot_format=snapshot_format)
        reference = {
            need.text: built_finder.find_experts(need) for need in queries
        }
        for victim in _snapshot_files(pristine):
            data = victim.read_bytes()
            for cut in _cuts(len(data)):
                work = tmp_path / f"work-{victim.name}-{cut}"
                shutil.copytree(pristine, work)
                target = work / victim.relative_to(pristine)
                target.write_bytes(data[:cut])
                try:
                    loaded = load_finder(work, tiny_dataset.analyzer)
                except StorageFormatError as err:
                    # the error names a path inside the snapshot, so the
                    # operator knows which file to restore — and it is
                    # never a bare JSONDecodeError / struct.error
                    assert str(work) in str(err)
                else:
                    # only information-free truncation may load (losing
                    # a trailing newline) — and then nothing is lost
                    assert len(data) - cut <= 1, (
                        f"{victim.name} truncated to {cut} bytes loaded "
                        f"without an error"
                    )
                    for need in queries:
                        assert loaded.find_experts(need) == reference[need.text]
                shutil.rmtree(work)

    def test_v3_bit_flip_breaks_checksum(
        self, built_finder, tiny_dataset, tmp_path
    ):
        directory = tmp_path / "flip"
        save_finder(built_finder, directory)
        gen = _generation_dir(directory)
        for victim in sorted(gen.glob("*.bin")):
            data = bytearray(victim.read_bytes())
            data[-3] ^= 0x20  # payload byte, past header and TOC
            victim.write_bytes(bytes(data))
            with pytest.raises(StorageFormatError, match="checksum mismatch"):
                load_finder(directory, tiny_dataset.analyzer)
            # restore so the next victim is tested in isolation
            data[-3] ^= 0x20
            victim.write_bytes(bytes(data))

    def test_deleted_generation_file_is_loud(
        self, built_finder, tiny_dataset, tmp_path
    ):
        directory = tmp_path / "missing"
        save_finder(built_finder, directory)
        gen = _generation_dir(directory)
        victim = sorted(gen.iterdir())[0]
        victim.unlink()
        with pytest.raises((StorageFormatError, FileNotFoundError)):
            load_finder(directory, tiny_dataset.analyzer)


class _ReplaceBomb:
    """Make ``os.replace`` fail on its k-th invocation."""

    def __init__(self, k, real):
        self.k = k
        self.calls = 0
        self._real = real

    def __call__(self, src, dst, **kwargs):
        self.calls += 1
        if self.calls == self.k:
            raise OSError("simulated crash during rename")
        return self._real(src, dst, **kwargs)


class TestCrashMidSave:
    def _assert_survives_every_crash_point(
        self, finder, analyzer, queries, directory, monkeypatch
    ):
        finder.save(directory)
        first_gen = _generation_dir(directory)
        reference = {need.text: finder.find_experts(need) for need in queries}

        real_replace = os.replace
        k = 0
        while True:
            k += 1
            bomb = _ReplaceBomb(k, real_replace)
            monkeypatch.setattr(os, "replace", bomb)
            try:
                if bomb.calls >= 100:
                    raise AssertionError("runaway save")
                try:
                    finder.save(directory)
                    crashed = False
                except OSError:
                    crashed = True
            finally:
                monkeypatch.setattr(os, "replace", real_replace)
            if not crashed:
                break  # k exceeded the number of renames: a clean save
            # the interrupted save must leave the previous snapshot
            # fully loadable and byte-identical in its rankings
            assert _generation_dir(directory) == first_gen
            loaded = ExpertFinder.load(directory, analyzer)
            for need in queries:
                assert loaded.find_experts(need) == reference[need.text]
        # the final (uncrashed) save moved CURRENT to a fresh generation
        assert _generation_dir(directory) != first_gen
        loaded = ExpertFinder.load(directory, analyzer)
        for need in queries:
            assert loaded.find_experts(need) == reference[need.text]
        assert k > 2  # the loop exercised real crash points

    def test_monolithic_resave_survives_any_rename_crash(
        self, built_finder, tiny_dataset, queries, tmp_path, monkeypatch
    ):
        self._assert_survives_every_crash_point(
            built_finder,
            tiny_dataset.analyzer,
            queries,
            tmp_path / "mono",
            monkeypatch,
        )

    def test_segmented_resave_survives_any_rename_crash(
        self, tiny_dataset, queries, tmp_path, monkeypatch
    ):
        finder = ExpertFinder.build(
            tiny_dataset.merged_graph,
            tiny_dataset.candidates_for(None),
            tiny_dataset.analyzer,
            FinderConfig(),
            corpus=tiny_dataset.corpus,
            index_mode="segmented",
        )
        self._assert_survives_every_crash_point(
            finder,
            tiny_dataset.analyzer,
            queries,
            tmp_path / "seg",
            monkeypatch,
        )

    def test_orphan_debris_from_a_crash_is_tolerated_then_pruned(
        self, built_finder, tiny_dataset, queries, tmp_path
    ):
        """A SIGKILL can leave a half-written next generation and stray
        temp files; loads must ignore them and the next save must not
        trip over them."""
        directory = tmp_path / "debris"
        built_finder.save(directory)
        reference = {need.text: built_finder.find_experts(need) for need in queries}

        orphan_gen = directory / "gen-0000099"
        orphan_gen.mkdir()
        (orphan_gen / "index.bin").write_bytes(b"partial garbage")
        (directory / ".CURRENT.1234.tmp").write_text("x", encoding="utf-8")

        loaded = ExpertFinder.load(directory, tiny_dataset.analyzer)
        for need in queries:
            assert loaded.find_experts(need) == reference[need.text]

        built_finder.save(directory)
        assert not orphan_gen.exists()  # debris pruned by the re-save
        loaded = ExpertFinder.load(directory, tiny_dataset.analyzer)
        for need in queries:
            assert loaded.find_experts(need) == reference[need.text]
