"""Round-trip and cache tests for whole-dataset persistence."""

import pytest

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.storage.cache import cache_path, load_or_build
from repro.storage.dataset_io import load_dataset, save_dataset
from repro.synthetic.dataset import DatasetScale


@pytest.fixture(scope="module")
def saved(tiny_dataset, tmp_path_factory):
    directory = tmp_path_factory.mktemp("ds") / "tiny"
    save_dataset(tiny_dataset, directory)
    return directory


class TestDatasetRoundTrip:
    def test_metadata(self, saved, tiny_dataset):
        loaded = load_dataset(saved)
        assert loaded.scale is DatasetScale.TINY
        assert loaded.seed == tiny_dataset.seed
        assert loaded.people == tiny_dataset.people

    def test_graphs(self, saved, tiny_dataset):
        loaded = load_dataset(saved)
        assert loaded.merged_graph.counts() == tiny_dataset.merged_graph.counts()
        for platform, graph in tiny_dataset.graphs.items():
            assert loaded.graphs[platform].counts() == graph.counts()

    def test_corpus(self, saved, tiny_dataset):
        loaded = load_dataset(saved)
        assert set(loaded.corpus) == set(tiny_dataset.corpus)

    def test_ground_truth_rederived(self, saved, tiny_dataset):
        loaded = load_dataset(saved)
        for domain in ("sport", "music"):
            assert loaded.ground_truth.experts(domain) == (
                tiny_dataset.ground_truth.experts(domain)
            )

    def test_profile_mapping(self, saved, tiny_dataset):
        loaded = load_dataset(saved)
        assert loaded.networks.profile_ids == tiny_dataset.networks.profile_ids

    def test_loaded_dataset_ranks_identically(self, saved, tiny_dataset):
        loaded = load_dataset(saved)

        def ranking(dataset):
            finder = ExpertFinder.build(
                dataset.merged_graph,
                dataset.candidates_for(None),
                dataset.analyzer,
                FinderConfig(),
                corpus=dataset.corpus,
            )
            return [
                (e.candidate_id, round(e.score, 9))
                for e in finder.find_experts("famous european football teams")
            ]

        assert ranking(loaded) == ranking(tiny_dataset)


class TestCache:
    def test_build_then_load(self, tmp_path):
        first = load_or_build(tmp_path, DatasetScale.TINY, seed=11)
        assert cache_path(tmp_path, DatasetScale.TINY, 11).is_dir()
        second = load_or_build(tmp_path, DatasetScale.TINY, seed=11)
        assert second.people == first.people
        assert second.merged_graph.counts() == first.merged_graph.counts()

    def test_corrupted_cache_rebuilt(self, tmp_path):
        directory = cache_path(tmp_path, DatasetScale.TINY, 12)
        directory.mkdir(parents=True)
        (directory / "meta.jsonl").write_text("garbage\n")
        dataset = load_or_build(tmp_path, DatasetScale.TINY, seed=12)
        assert dataset.people  # rebuilt successfully

    def test_refresh_forces_rebuild(self, tmp_path):
        load_or_build(tmp_path, DatasetScale.TINY, seed=13)
        dataset = load_or_build(tmp_path, DatasetScale.TINY, seed=13, refresh=True)
        assert dataset.scale is DatasetScale.TINY

    def test_cache_carries_version_stamp(self, tmp_path):
        import json

        load_or_build(tmp_path, DatasetScale.TINY, seed=14)
        stamp_file = cache_path(tmp_path, DatasetScale.TINY, 14) / "cache_version.json"
        stamp = json.loads(stamp_file.read_text())
        from repro.storage.cache import CACHE_FORMAT_VERSION

        assert stamp["cache_version"] == CACHE_FORMAT_VERSION

    def test_stale_version_stamp_rebuilds(self, tmp_path):
        import json

        load_or_build(tmp_path, DatasetScale.TINY, seed=15)
        directory = cache_path(tmp_path, DatasetScale.TINY, 15)
        stamp_file = directory / "cache_version.json"
        stamp = json.loads(stamp_file.read_text())
        stamp["cache_version"] = -1
        stamp_file.write_text(json.dumps(stamp))
        # plant a sentinel that only survives if the stale dir is trusted
        sentinel = directory / "sentinel"
        sentinel.write_text("stale")
        dataset = load_or_build(tmp_path, DatasetScale.TINY, seed=15)
        assert dataset.people
        assert not sentinel.exists()  # directory was discarded and rebuilt

    def test_unstamped_cache_rebuilt(self, tmp_path):
        # pre-versioning cache layouts carry no stamp: never trusted
        load_or_build(tmp_path, DatasetScale.TINY, seed=16)
        directory = cache_path(tmp_path, DatasetScale.TINY, 16)
        (directory / "cache_version.json").unlink()
        dataset = load_or_build(tmp_path, DatasetScale.TINY, seed=16)
        assert dataset.people
        assert (directory / "cache_version.json").exists()


class TestErrorPaths:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nowhere")

    def test_meta_without_dataset_record(self, tmp_path):
        from repro.storage.jsonl import StorageFormatError, write_records

        directory = tmp_path / "broken"
        directory.mkdir()
        write_records(directory / "meta.jsonl", "dataset-meta", [])
        with pytest.raises(StorageFormatError, match="missing dataset record"):
            load_dataset(directory)

    def test_unknown_meta_record_type(self, tmp_path):
        from repro.storage.jsonl import StorageFormatError, write_records

        directory = tmp_path / "broken2"
        directory.mkdir()
        write_records(
            directory / "meta.jsonl",
            "dataset-meta",
            [{"type": "dataset", "scale": "tiny", "seed": 1}, {"type": "mystery"}],
        )
        with pytest.raises(StorageFormatError, match="unknown meta record"):
            load_dataset(directory)
