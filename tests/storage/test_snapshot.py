"""Finder snapshot round-trip tests over the TINY dataset."""

import gzip
import json

import pytest

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.index.entity_index import EntityIndex, EntityPosting
from repro.index.inverted import InvertedIndex, Posting
from repro.storage.jsonl import StorageFormatError
from repro.storage.snapshot import SNAPSHOT_VERSION, load_finder, save_finder


def _mutate_records(path, mutate):
    """Structurally rewrite one record of a gzipped jsonl file: *mutate*
    takes each parsed record and returns True once it has edited one."""
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    done = False
    records = []
    for line in lines[1:]:
        record = json.loads(line)
        if not done:
            done = bool(mutate(record))
        records.append(record)
    assert done, "mutator never found a record to edit"
    out = [lines[0]] + [
        json.dumps(r, separators=(",", ":"), sort_keys=True) for r in records
    ]
    with gzip.open(path, "wt", encoding="utf-8") as fh:
        fh.write("\n".join(out) + "\n")


@pytest.fixture(scope="module")
def built_finder(tiny_dataset):
    return ExpertFinder.build(
        tiny_dataset.merged_graph,
        tiny_dataset.candidates_for(None),
        tiny_dataset.analyzer,
        FinderConfig(),
        corpus=tiny_dataset.corpus,
    )


@pytest.fixture(scope="module")
def snapshot_dir(built_finder, tmp_path_factory):
    directory = tmp_path_factory.mktemp("snapshot") / "finder"
    built_finder.save(directory)
    return directory


@pytest.fixture(scope="module")
def loaded_finder(snapshot_dir, tiny_dataset):
    return ExpertFinder.load(snapshot_dir, tiny_dataset.analyzer)


class TestRoundTrip:
    def test_identical_rankings_on_all_queries(
        self, built_finder, loaded_finder, tiny_dataset
    ):
        """Every query must rank identically — candidates, exact scores,
        and support counts (ExpertScore equality compares all three)."""
        for need in tiny_dataset.queries:
            assert loaded_finder.find_experts(need) == built_finder.find_experts(need)

    def test_identical_rankings_under_overrides(
        self, built_finder, loaded_finder, tiny_dataset
    ):
        need = tiny_dataset.queries[0]
        for alpha, window in ((0.0, None), (1.0, 10), (0.5, 0.25)):
            assert loaded_finder.find_experts(
                need, alpha=alpha, window=window
            ) == built_finder.find_experts(need, alpha=alpha, window=window)

    def test_config_preserved(self, built_finder, loaded_finder):
        assert loaded_finder.config == built_finder.config

    def test_counts_preserved(self, built_finder, loaded_finder):
        assert loaded_finder.indexed_resources == built_finder.indexed_resources
        assert dict(loaded_finder.evidence_counts) == dict(
            built_finder.evidence_counts
        )

    def test_evidence_relation_preserved(self, built_finder, loaded_finder):
        assert {
            doc: list(map(tuple, supporters))
            for doc, supporters in loaded_finder.evidence_of.items()
        } == {
            doc: list(map(tuple, supporters))
            for doc, supporters in built_finder.evidence_of.items()
        }

    def test_top_k_fast_path_agrees_after_load(self, loaded_finder, tiny_dataset):
        need = tiny_dataset.queries[0]
        full = loaded_finder.match_resources(need)
        for k in (1, 5, len(full), len(full) + 10):
            assert loaded_finder.match_resources(need, limit=k) == full[:k]

    def test_streaming_continues_after_load(self, snapshot_dir, tiny_dataset):
        finder = ExpertFinder.load(snapshot_dir, tiny_dataset.analyzer)
        candidate = next(iter(finder.evidence_counts))
        before = finder.evidence_count(candidate)
        assert finder.observe(
            "snapshot:new:1",
            "an incredibly rare zorpify gadget review",
            [(candidate, 1)],
        )
        assert finder.evidence_count(candidate) == before + 1
        assert finder.indexed_resources >= 1


class TestFormatGuards:
    def test_load_missing_directory(self, tmp_path, tiny_dataset):
        with pytest.raises((StorageFormatError, FileNotFoundError)):
            load_finder(tmp_path / "nope", tiny_dataset.analyzer)

    def test_load_rejects_future_snapshot_version(
        self, built_finder, tiny_dataset, tmp_path
    ):
        directory = tmp_path / "future"
        save_finder(built_finder, directory)
        meta = directory / "meta.jsonl"
        text = meta.read_text(encoding="utf-8")
        meta.write_text(
            text.replace(
                f'"snapshot_version":{SNAPSHOT_VERSION}',
                f'"snapshot_version":{SNAPSHOT_VERSION + 1}',
            ),
            encoding="utf-8",
        )
        with pytest.raises(StorageFormatError):
            load_finder(directory, tiny_dataset.analyzer)

    def test_load_rejects_corrupt_meta(self, built_finder, tiny_dataset, tmp_path):
        directory = tmp_path / "corrupt"
        save_finder(built_finder, directory)
        (directory / "meta.jsonl").write_text("not json\n", encoding="utf-8")
        with pytest.raises(StorageFormatError):
            load_finder(directory, tiny_dataset.analyzer)


class TestContentValidation:
    """Corrupt snapshot *content* (well-formed jsonl, bad data) must be
    rejected at load time, on both index files symmetrically."""

    @pytest.fixture
    def snapshot(self, built_finder, tmp_path):
        directory = tmp_path / "snap"
        save_finder(built_finder, directory)
        return directory

    def test_rejects_unknown_doc_in_term_postings(self, snapshot, tiny_dataset):
        def mutate(record):
            if record["type"] == "term" and record["p"]:
                record["p"][0][0] = "ghost-doc"
                return True

        _mutate_records(snapshot / "term_index.jsonl.gz", mutate)
        with pytest.raises(StorageFormatError, match="ghost-doc"):
            load_finder(snapshot, tiny_dataset.analyzer)

    def test_rejects_unknown_doc_in_entity_postings(self, snapshot, tiny_dataset):
        def mutate(record):
            if record["type"] == "entity" and record["p"]:
                record["p"][0][0] = "ghost-doc"
                return True

        _mutate_records(snapshot / "entity_index.jsonl.gz", mutate)
        with pytest.raises(StorageFormatError, match="ghost-doc"):
            load_finder(snapshot, tiny_dataset.analyzer)

    def test_rejects_non_positive_term_frequency(self, snapshot, tiny_dataset):
        def mutate(record):
            if record["type"] == "term" and record["p"]:
                record["p"][0][1] = 0
                return True

        _mutate_records(snapshot / "term_index.jsonl.gz", mutate)
        with pytest.raises(StorageFormatError):
            load_finder(snapshot, tiny_dataset.analyzer)

    def test_rejects_negative_d_score(self, snapshot, tiny_dataset):
        def mutate(record):
            if record["type"] == "entity" and record["p"]:
                record["p"][0][2] = -0.5
                return True

        _mutate_records(snapshot / "entity_index.jsonl.gz", mutate)
        with pytest.raises(StorageFormatError):
            load_finder(snapshot, tiny_dataset.analyzer)

    def test_rejects_diverging_doc_id_sets(self, snapshot, tiny_dataset):
        def mutate(record):
            if record["type"] == "docs":
                record["ids"].append("extra-doc")
                return True

        _mutate_records(snapshot / "entity_index.jsonl.gz", mutate)
        with pytest.raises(StorageFormatError, match="disagree"):
            load_finder(snapshot, tiny_dataset.analyzer)

    def test_rejects_out_of_range_evidence_distance(
        self, snapshot, built_finder, tiny_dataset
    ):
        # caught by the eager engine compile: the evidence record refers
        # to a distance the configured weight table cannot weight (the
        # corrupted doc must be indexed — only indexed evidence compiles)
        indexed = built_finder.retriever.term_index.doc_ids()

        def mutate(record):
            if (
                record["type"] == "evidence"
                and record["doc"] in indexed
                and record["s"]
            ):
                record["s"][0][1] = 99
                return True

        _mutate_records(snapshot / "evidence.jsonl.gz", mutate)
        with pytest.raises(StorageFormatError, match="distance"):
            load_finder(snapshot, tiny_dataset.analyzer)


class TestLoadedEngine:
    def test_engine_compiled_at_load(self, loaded_finder):
        # serving warm-starts from snapshots: the columnar engine must be
        # ready before the first query, not compiled lazily on it
        assert loaded_finder._engine is not None
        assert loaded_finder.engine == "columnar"

    def test_restore_rejects_unknown_doc_ids_directly(self):
        with pytest.raises(ValueError, match="unknown document"):
            InvertedIndex.restore(["d1"], {"t": [Posting("d2", 1)]})
        with pytest.raises(ValueError, match="unknown document"):
            EntityIndex.restore(["d1"], {"e": [EntityPosting("d2", 1, 0.5)]})
