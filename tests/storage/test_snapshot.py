"""Finder snapshot round-trip tests over the TINY dataset."""

import gzip
import json

import pytest

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.index.entity_index import EntityIndex, EntityPosting
from repro.index.inverted import InvertedIndex, Posting
from repro.storage.jsonl import StorageFormatError
from repro.storage.snapshot import (
    JSONL_SNAPSHOT_VERSION,
    SNAPSHOT_VERSION,
    load_finder,
    save_finder,
)


def _generation_dir(snapshot_dir):
    """The generation a v3 snapshot's CURRENT file points at."""
    lines = (snapshot_dir / "CURRENT").read_text(encoding="utf-8").splitlines()
    return snapshot_dir / lines[1]


def _mutate_records(path, mutate):
    """Structurally rewrite one record of a gzipped jsonl file: *mutate*
    takes each parsed record and returns True once it has edited one."""
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    done = False
    records = []
    for line in lines[1:]:
        record = json.loads(line)
        if not done:
            done = bool(mutate(record))
        records.append(record)
    assert done, "mutator never found a record to edit"
    out = [lines[0]] + [
        json.dumps(r, separators=(",", ":"), sort_keys=True) for r in records
    ]
    with gzip.open(path, "wt", encoding="utf-8") as fh:
        fh.write("\n".join(out) + "\n")


@pytest.fixture(scope="module")
def built_finder(tiny_dataset):
    return ExpertFinder.build(
        tiny_dataset.merged_graph,
        tiny_dataset.candidates_for(None),
        tiny_dataset.analyzer,
        FinderConfig(),
        corpus=tiny_dataset.corpus,
    )


@pytest.fixture(scope="module")
def snapshot_dir(built_finder, tmp_path_factory):
    directory = tmp_path_factory.mktemp("snapshot") / "finder"
    built_finder.save(directory)
    return directory


@pytest.fixture(scope="module")
def loaded_finder(snapshot_dir, tiny_dataset):
    return ExpertFinder.load(snapshot_dir, tiny_dataset.analyzer)


class TestRoundTrip:
    def test_identical_rankings_on_all_queries(
        self, built_finder, loaded_finder, tiny_dataset
    ):
        """Every query must rank identically — candidates, exact scores,
        and support counts (ExpertScore equality compares all three)."""
        for need in tiny_dataset.queries:
            assert loaded_finder.find_experts(need) == built_finder.find_experts(need)

    def test_identical_rankings_under_overrides(
        self, built_finder, loaded_finder, tiny_dataset
    ):
        need = tiny_dataset.queries[0]
        for alpha, window in ((0.0, None), (1.0, 10), (0.5, 0.25)):
            assert loaded_finder.find_experts(
                need, alpha=alpha, window=window
            ) == built_finder.find_experts(need, alpha=alpha, window=window)

    def test_config_preserved(self, built_finder, loaded_finder):
        assert loaded_finder.config == built_finder.config

    def test_counts_preserved(self, built_finder, loaded_finder):
        assert loaded_finder.indexed_resources == built_finder.indexed_resources
        assert dict(loaded_finder.evidence_counts) == dict(
            built_finder.evidence_counts
        )

    def test_evidence_relation_preserved(self, built_finder, loaded_finder):
        assert {
            doc: list(map(tuple, supporters))
            for doc, supporters in loaded_finder.evidence_of.items()
        } == {
            doc: list(map(tuple, supporters))
            for doc, supporters in built_finder.evidence_of.items()
        }

    def test_top_k_fast_path_agrees_after_load(self, loaded_finder, tiny_dataset):
        need = tiny_dataset.queries[0]
        full = loaded_finder.match_resources(need)
        for k in (1, 5, len(full), len(full) + 10):
            assert loaded_finder.match_resources(need, limit=k) == full[:k]

    def test_streaming_continues_after_load(self, snapshot_dir, tiny_dataset):
        finder = ExpertFinder.load(snapshot_dir, tiny_dataset.analyzer)
        candidate = next(iter(finder.evidence_counts))
        before = finder.evidence_count(candidate)
        assert finder.observe(
            "snapshot:new:1",
            "an incredibly rare zorpify gadget review",
            [(candidate, 1)],
        )
        assert finder.evidence_count(candidate) == before + 1
        assert finder.indexed_resources >= 1


class TestFormatGuards:
    def test_load_missing_directory(self, tmp_path, tiny_dataset):
        with pytest.raises((StorageFormatError, FileNotFoundError)):
            load_finder(tmp_path / "nope", tiny_dataset.analyzer)

    def test_load_rejects_future_snapshot_version(
        self, built_finder, tiny_dataset, tmp_path
    ):
        directory = tmp_path / "future"
        save_finder(built_finder, directory, snapshot_format="jsonl")
        meta = directory / "meta.jsonl"
        text = meta.read_text(encoding="utf-8")
        meta.write_text(
            text.replace(
                f'"snapshot_version":{JSONL_SNAPSHOT_VERSION}',
                f'"snapshot_version":{JSONL_SNAPSHOT_VERSION + 99}',
            ),
            encoding="utf-8",
        )
        with pytest.raises(StorageFormatError):
            load_finder(directory, tiny_dataset.analyzer)

    def test_v3_load_rejects_future_snapshot_version(
        self, built_finder, tiny_dataset, tmp_path
    ):
        directory = tmp_path / "future-v3"
        save_finder(built_finder, directory)
        meta = _generation_dir(directory) / "meta.jsonl"
        text = meta.read_text(encoding="utf-8")
        meta.write_text(
            text.replace(
                f'"snapshot_version":{SNAPSHOT_VERSION}',
                f'"snapshot_version":{SNAPSHOT_VERSION + 1}',
            ),
            encoding="utf-8",
        )
        with pytest.raises(StorageFormatError):
            load_finder(directory, tiny_dataset.analyzer)

    def test_load_rejects_corrupt_meta(self, built_finder, tiny_dataset, tmp_path):
        directory = tmp_path / "corrupt"
        save_finder(built_finder, directory, snapshot_format="jsonl")
        (directory / "meta.jsonl").write_text("not json\n", encoding="utf-8")
        with pytest.raises(StorageFormatError):
            load_finder(directory, tiny_dataset.analyzer)

    def test_load_rejects_corrupt_current_pointer(
        self, built_finder, tiny_dataset, tmp_path
    ):
        directory = tmp_path / "badcurrent"
        save_finder(built_finder, directory)
        (directory / "CURRENT").write_text("garbage\n", encoding="utf-8")
        with pytest.raises(StorageFormatError, match="CURRENT|pointer"):
            load_finder(directory, tiny_dataset.analyzer)

    def test_load_rejects_dangling_current_pointer(
        self, built_finder, tiny_dataset, tmp_path
    ):
        directory = tmp_path / "dangling"
        save_finder(built_finder, directory)
        import shutil

        shutil.rmtree(_generation_dir(directory))
        with pytest.raises(StorageFormatError, match="missing generation"):
            load_finder(directory, tiny_dataset.analyzer)


class TestContentValidation:
    """Corrupt snapshot *content* (well-formed jsonl, bad data) must be
    rejected at load time, on both index files symmetrically."""

    @pytest.fixture
    def snapshot(self, built_finder, tmp_path):
        directory = tmp_path / "snap"
        save_finder(built_finder, directory, snapshot_format="jsonl")
        return directory

    def test_rejects_unknown_doc_in_term_postings(self, snapshot, tiny_dataset):
        def mutate(record):
            if record["type"] == "term" and record["p"]:
                record["p"][0][0] = "ghost-doc"
                return True

        _mutate_records(snapshot / "term_index.jsonl.gz", mutate)
        with pytest.raises(StorageFormatError, match="ghost-doc"):
            load_finder(snapshot, tiny_dataset.analyzer)

    def test_rejects_unknown_doc_in_entity_postings(self, snapshot, tiny_dataset):
        def mutate(record):
            if record["type"] == "entity" and record["p"]:
                record["p"][0][0] = "ghost-doc"
                return True

        _mutate_records(snapshot / "entity_index.jsonl.gz", mutate)
        with pytest.raises(StorageFormatError, match="ghost-doc"):
            load_finder(snapshot, tiny_dataset.analyzer)

    def test_rejects_non_positive_term_frequency(self, snapshot, tiny_dataset):
        def mutate(record):
            if record["type"] == "term" and record["p"]:
                record["p"][0][1] = 0
                return True

        _mutate_records(snapshot / "term_index.jsonl.gz", mutate)
        with pytest.raises(StorageFormatError):
            load_finder(snapshot, tiny_dataset.analyzer)

    def test_rejects_negative_d_score(self, snapshot, tiny_dataset):
        def mutate(record):
            if record["type"] == "entity" and record["p"]:
                record["p"][0][2] = -0.5
                return True

        _mutate_records(snapshot / "entity_index.jsonl.gz", mutate)
        with pytest.raises(StorageFormatError):
            load_finder(snapshot, tiny_dataset.analyzer)

    def test_rejects_diverging_doc_id_sets(self, snapshot, tiny_dataset):
        def mutate(record):
            if record["type"] == "docs":
                record["ids"].append("extra-doc")
                return True

        _mutate_records(snapshot / "entity_index.jsonl.gz", mutate)
        with pytest.raises(StorageFormatError, match="disagree"):
            load_finder(snapshot, tiny_dataset.analyzer)

    def test_rejects_out_of_range_evidence_distance(
        self, snapshot, built_finder, tiny_dataset
    ):
        # caught by the eager engine compile: the evidence record refers
        # to a distance the configured weight table cannot weight (the
        # corrupted doc must be indexed — only indexed evidence compiles)
        indexed = built_finder.retriever.term_index.doc_ids()

        def mutate(record):
            if (
                record["type"] == "evidence"
                and record["doc"] in indexed
                and record["s"]
            ):
                record["s"][0][1] = 99
                return True

        _mutate_records(snapshot / "evidence.jsonl.gz", mutate)
        with pytest.raises(StorageFormatError, match="distance"):
            load_finder(snapshot, tiny_dataset.analyzer)


class TestLoadedEngine:
    def test_engine_compiled_at_load(self, loaded_finder):
        # serving warm-starts from snapshots: the columnar engine must be
        # ready before the first query, not compiled lazily on it
        assert loaded_finder._engine is not None
        assert loaded_finder.engine == "columnar"

    def test_restore_rejects_unknown_doc_ids_directly(self):
        with pytest.raises(ValueError, match="unknown document"):
            InvertedIndex.restore(["d1"], {"t": [Posting("d2", 1)]})
        with pytest.raises(ValueError, match="unknown document"):
            EntityIndex.restore(["d1"], {"e": [EntityPosting("d2", 1, 0.5)]})


# -- segmented snapshots ------------------------------------------------------

from repro.core.expert_finder import ExpertFinder as _ExpertFinder  # noqa: E402
from repro.socialgraph.graph import SocialGraph  # noqa: E402
from repro.socialgraph.metamodel import (  # noqa: E402
    Platform,
    RelationKind,
    Resource,
    UserProfile,
)

_SEG_NEEDS = ("freestyle swimming race", "rock guitar song", "swimming pool")

#: streamed after the build: crosses the seal threshold twice (the
#: Italian resource is sealed as evidence-only) and leaves one indexed
#: resource in the write buffer
_SEG_EVENTS = [
    ("s1", "more freestyle swimming drills before the next race", "bob"),
    ("s2", "a shared guitar practice session down by the swimming pool", "alice"),
    ("s3", "questa e una bella giornata per andare in piscina con gli amici", "alice"),
    ("s4", "open water swimming race report with detailed timing splits", "bob"),
    ("s5", "rock guitar chords for a brand new song", "alice"),
]


def _build_segmented(analyzer):
    g = SocialGraph(Platform.TWITTER)
    for pid in ("alice", "bob"):
        g.add_profile(
            UserProfile(profile_id=pid, platform=Platform.TWITTER, display_name=pid)
        )
    g.add_resource(
        Resource(resource_id="t1", platform=Platform.TWITTER,
                 text="guitar chords and a new rock song")
    )
    g.link_resource("alice", "t1", RelationKind.CREATES)
    finder = _ExpertFinder.build(
        g, ("alice", "bob"), analyzer, FinderConfig(window=None),
        index_mode="segmented", seal_threshold=2,
    )
    for rid, text, supporter in _SEG_EVENTS:
        finder.observe(rid, text, [(supporter, 1)])
    return finder


@pytest.fixture(scope="module")
def segmented_finder(analyzer):
    return _build_segmented(analyzer)


@pytest.fixture(scope="module")
def segmented_snapshot_dir(segmented_finder, tmp_path_factory):
    directory = tmp_path_factory.mktemp("segmented") / "finder"
    segmented_finder.save(directory)
    return directory


@pytest.fixture(scope="module")
def loaded_segmented(segmented_snapshot_dir, analyzer):
    return ExpertFinder.load(segmented_snapshot_dir, analyzer)


def _edit_manifest(path, edit):
    """Structurally rewrite the (plain jsonl) segment manifest."""
    lines = path.read_text(encoding="utf-8").splitlines()
    records = edit([json.loads(line) for line in lines[1:]])
    path.write_text(
        "\n".join(
            [lines[0]]
            + [json.dumps(r, separators=(",", ":"), sort_keys=True) for r in records]
        )
        + "\n",
        encoding="utf-8",
    )


class TestSegmentedRoundTrip:
    def test_stream_left_interesting_state(self, segmented_finder):
        # the fixture must cover all three layout pieces: multiple sealed
        # segments, an evidence-only doc inside a segment, and a
        # non-empty write buffer
        stats = segmented_finder.index_stats
        assert stats.segments >= 2
        assert stats.buffered == 1
        assert stats.resources > stats.documents  # the Italian resource

    def test_files_layout(self, segmented_snapshot_dir):
        assert (segmented_snapshot_dir / "CURRENT").exists()
        gen = _generation_dir(segmented_snapshot_dir)
        names = sorted(p.name for p in gen.iterdir())
        assert "meta.jsonl" in names
        assert "segments.jsonl" in names
        assert "buffer.bin" in names
        assert any(n.startswith("segment-") and n.endswith(".bin")
                   for n in names)
        # the monolithic layout's merged files must NOT be written
        assert "index.bin" not in names
        assert "engine.bin" not in names

    def test_jsonl_files_layout(self, segmented_finder, tmp_path):
        directory = tmp_path / "seg-jsonl"
        save_finder(segmented_finder, directory, snapshot_format="jsonl")
        names = sorted(p.name for p in directory.iterdir())
        assert "meta.jsonl" in names
        assert "segments.jsonl" in names
        assert "buffer.jsonl.gz" in names
        assert any(n.startswith("segment-") and n.endswith(".jsonl.gz")
                   for n in names)
        # the monolithic layout's merged files must NOT be written
        assert "term_index.jsonl.gz" not in names

    def test_load_preserves_segment_structure(
        self, segmented_finder, loaded_segmented
    ):
        # the snapshot restores segments as they were — no silent merge
        before = segmented_finder.index_stats
        after = loaded_segmented.index_stats
        assert loaded_segmented.index_mode == "segmented"
        assert after.segments == before.segments
        assert after.segment_docs == before.segment_docs
        assert after.buffered == before.buffered
        assert after.documents == before.documents
        assert after.resources == before.resources

    def test_identical_rankings(self, segmented_finder, loaded_segmented):
        for need in _SEG_NEEDS:
            assert loaded_segmented.find_experts(need) == (
                segmented_finder.find_experts(need)
            )
            for alpha, window in ((0.0, None), (1.0, 2), (0.5, 0.5)):
                assert loaded_segmented.find_experts(
                    need, alpha=alpha, window=window
                ) == segmented_finder.find_experts(need, alpha=alpha, window=window)

    def test_counts_and_evidence_preserved(self, segmented_finder, loaded_segmented):
        assert loaded_segmented.indexed_resources == (
            segmented_finder.indexed_resources
        )
        assert dict(loaded_segmented.evidence_counts) == dict(
            segmented_finder.evidence_counts
        )
        assert {
            doc: list(map(tuple, rows))
            for doc, rows in loaded_segmented.evidence_of.items()
        } == {
            doc: list(map(tuple, rows))
            for doc, rows in segmented_finder.evidence_of.items()
        }

    def test_streaming_continues_after_load(self, segmented_snapshot_dir, analyzer):
        finder = ExpertFinder.load(segmented_snapshot_dir, analyzer)
        buffered = finder.index_stats.buffered
        assert finder.observe(
            "post-load:1", "another freestyle swimming session", [("bob", 1)]
        )
        assert finder.index_stats.buffered in (0, buffered + 1)  # may seal
        assert "bob" in {
            e.candidate_id for e in finder.find_experts("freestyle swimming")
        }

    def test_compacted_snapshot_round_trips_to_one_segment(
        self, analyzer, tmp_path
    ):
        finder = _build_segmented(analyzer)
        reference = {need: finder.find_experts(need) for need in _SEG_NEEDS}
        assert finder.segmented_index.compact(full=True) == 1
        directory = tmp_path / "compacted"
        finder.save(directory)
        loaded = ExpertFinder.load(directory, analyzer)
        stats = loaded.index_stats
        assert (stats.segments, stats.buffered) == (1, 0)
        assert not (_generation_dir(directory) / "buffer.bin").exists()
        for need, expected in reference.items():
            assert loaded.find_experts(need) == expected


class TestSegmentedFormatGuards:
    @pytest.fixture
    def snapshot(self, segmented_finder, tmp_path):
        directory = tmp_path / "seg"
        save_finder(segmented_finder, directory, snapshot_format="jsonl")
        return directory

    def test_rejects_unknown_index_mode(self, snapshot, analyzer):
        meta = snapshot / "meta.jsonl"
        meta.write_text(
            meta.read_text(encoding="utf-8").replace(
                '"index_mode":"segmented"', '"index_mode":"sharded"'
            ),
            encoding="utf-8",
        )
        with pytest.raises(StorageFormatError, match="index mode"):
            load_finder(snapshot, analyzer)

    def test_rejects_manifest_doc_count_mismatch(self, snapshot, analyzer):
        def edit(records):
            entry = next(r for r in records if r["type"] == "segment")
            entry["docs"] += 1
            return records

        _edit_manifest(snapshot / "segments.jsonl", edit)
        with pytest.raises(StorageFormatError, match="manifest says"):
            load_finder(snapshot, analyzer)

    def test_rejects_manifest_resource_count_mismatch(self, snapshot, analyzer):
        def edit(records):
            entry = next(r for r in records if r["type"] == "buffer")
            entry["resources"] += 1
            return records

        _edit_manifest(snapshot / "segments.jsonl", edit)
        with pytest.raises(StorageFormatError, match="manifest says"):
            load_finder(snapshot, analyzer)

    def test_rejects_missing_segment_file(self, snapshot, analyzer):
        victim = next(iter(sorted(snapshot.glob("segment-*.jsonl.gz"))))
        victim.unlink()
        with pytest.raises(StorageFormatError, match="missing file"):
            load_finder(snapshot, analyzer)

    def test_rejects_segment_count_mismatch(self, snapshot, analyzer):
        def edit(records):
            header = next(r for r in records if r["type"] == "manifest")
            header["segments"] += 1
            return records

        _edit_manifest(snapshot / "segments.jsonl", edit)
        with pytest.raises(StorageFormatError, match="declares"):
            load_finder(snapshot, analyzer)

    def test_rejects_duplicate_doc_across_segments(self, snapshot, analyzer):
        # list the first segment twice (bumping the declared count): the
        # same doc then appears in two places, which restore() rejects
        def edit(records):
            header = next(r for r in records if r["type"] == "manifest")
            entry = next(r for r in records if r["type"] == "segment")
            duplicate = dict(entry)
            duplicate["id"] = entry["id"] + 1000
            header["segments"] += 1
            return records + [duplicate]

        _edit_manifest(snapshot / "segments.jsonl", edit)
        with pytest.raises(StorageFormatError, match="more than one place"):
            load_finder(snapshot, analyzer)

    def test_rejects_indexed_count_mismatch(self, snapshot, analyzer):
        meta = snapshot / "meta.jsonl"
        text = meta.read_text(encoding="utf-8")
        import re as _re

        new_text = _re.sub(
            r'"indexed":(\d+)',
            lambda m: f'"indexed":{int(m.group(1)) + 1}',
            text,
            count=1,
        )
        assert new_text != text
        meta.write_text(new_text, encoding="utf-8")
        with pytest.raises(StorageFormatError, match="metadata says"):
            load_finder(snapshot, analyzer)

    def test_rejects_corrupt_segment_postings(self, snapshot, analyzer):
        victim = next(iter(sorted(snapshot.glob("segment-*.jsonl.gz"))))

        def mutate(record):
            if record["type"] == "term" and record["p"]:
                record["p"][0][0] = "ghost-doc"
                return True

        _mutate_records(victim, mutate)
        with pytest.raises(StorageFormatError, match="ghost-doc"):
            load_finder(snapshot, analyzer)


class TestSegmentedLoadedSurface:
    def test_no_monolithic_retriever_after_load(self, loaded_segmented):
        with pytest.raises(RuntimeError, match="monolithic"):
            loaded_segmented.retriever
        assert loaded_segmented._engine is None  # nothing recompiled


class TestV3Lifecycle:
    """Generation management and cross-format migration of the binary
    snapshot layout."""

    def test_resave_replaces_generation_and_prunes_old(
        self, built_finder, tiny_dataset, tmp_path
    ):
        directory = tmp_path / "resave"
        built_finder.save(directory)
        first_gen = _generation_dir(directory)
        built_finder.save(directory)
        second_gen = _generation_dir(directory)
        assert second_gen != first_gen
        assert not first_gen.exists()  # stale generation pruned
        loaded = ExpertFinder.load(directory, tiny_dataset.analyzer)
        for need in tiny_dataset.queries:
            assert loaded.find_experts(need) == built_finder.find_experts(need)

    def test_jsonl_to_v3_migration(self, built_finder, tiny_dataset, tmp_path):
        v2_dir = tmp_path / "v2"
        save_finder(built_finder, v2_dir, snapshot_format="jsonl")
        migrated = ExpertFinder.load(v2_dir, tiny_dataset.analyzer)
        v3_dir = tmp_path / "v3"
        migrated.save(v3_dir)
        assert (v3_dir / "CURRENT").exists()
        reloaded = ExpertFinder.load(v3_dir, tiny_dataset.analyzer)
        for need in tiny_dataset.queries:
            assert reloaded.find_experts(need) == built_finder.find_experts(need)

    def test_format_switch_prunes_other_layout(
        self, built_finder, tiny_dataset, tmp_path
    ):
        directory = tmp_path / "switch"
        built_finder.save(directory)
        assert (directory / "CURRENT").exists()
        # v3 -> jsonl: the generation layout must disappear
        built_finder.save(directory, snapshot_format="jsonl")
        assert not (directory / "CURRENT").exists()
        assert not any(directory.glob("gen-*"))
        assert (directory / "term_index.jsonl.gz").exists()
        # jsonl -> v3: the flat files must disappear
        built_finder.save(directory)
        assert (directory / "CURRENT").exists()
        assert not (directory / "term_index.jsonl.gz").exists()
        loaded = ExpertFinder.load(directory, tiny_dataset.analyzer)
        for need in tiny_dataset.queries:
            assert loaded.find_experts(need) == built_finder.find_experts(need)

    def test_prune_leaves_unrecognized_files_alone(
        self, built_finder, tiny_dataset, tmp_path
    ):
        directory = tmp_path / "shared"
        built_finder.save(directory)
        stranger = directory / "NOTES.txt"
        stranger.write_text("hands off\n", encoding="utf-8")
        built_finder.save(directory)
        assert stranger.read_text(encoding="utf-8") == "hands off\n"

    def test_v3_rankings_match_jsonl_rankings(
        self, built_finder, tiny_dataset, tmp_path
    ):
        v3 = tmp_path / "as-v3"
        v2 = tmp_path / "as-jsonl"
        built_finder.save(v3)
        built_finder.save(v2, snapshot_format="jsonl")
        from_v3 = ExpertFinder.load(v3, tiny_dataset.analyzer)
        from_v2 = ExpertFinder.load(v2, tiny_dataset.analyzer)
        for need in tiny_dataset.queries:
            assert from_v3.find_experts(need) == from_v2.find_experts(need)

    def test_save_rejects_unknown_format(self, built_finder, tmp_path):
        with pytest.raises(ValueError, match="snapshot_format"):
            built_finder.save(tmp_path / "bad", snapshot_format="v9")

    def test_segmented_v3_lazy_segments_hydrate_on_demand(
        self, analyzer, tmp_path
    ):
        finder = _build_segmented(analyzer)
        reference = {need: finder.find_experts(need) for need in _SEG_NEEDS}
        directory = tmp_path / "lazy"
        finder.save(directory)
        loaded = ExpertFinder.load(directory, analyzer)
        # sealed segments come back cold: columns mapped, indexes unbuilt
        segments = loaded.segmented_index._segments
        assert all(seg._term_index is None for seg in segments)
        for need, expected in reference.items():
            assert loaded.find_experts(need) == expected
        # queries score straight off the mapped columns — no hydration
        assert all(seg._term_index is None for seg in segments)
        # explicit index access (merge/re-save path) hydrates on demand
        for seg in segments:
            assert seg.term_index.document_count == seg.document_count
        assert all(seg._term_index is not None for seg in segments)

# -- block-max pruning metadata -----------------------------------------------

from repro.storage.binary import MappedSections, write_sections  # noqa: E402

#: section names that carry block-max metadata (per-prefix quadruple
#: plus the shared span) — what _strip_block_sections removes to
#: simulate a snapshot written before pruning existed
_BLOCK_SUFFIXES = ("bid", "bmax", "blkoff", "boff")


def _is_block_section(name):
    return name == "blk#span" or name.rpartition("#")[2] in _BLOCK_SUFFIXES


def _strip_block_sections(path):
    """Rewrite the section container at *path* without block metadata,
    byte-preserving every other section."""
    mapped = MappedSections.open(path)
    kept = []
    for name in mapped.names():
        if _is_block_section(name):
            continue
        dtype, offset, length = mapped._toc[name]
        kept.append((name, dtype, bytes(mapped._view[offset:offset + length])))
    del mapped  # release the exported memoryviews before rewriting
    write_sections(path, kept)


class TestBlockMaxPersistence:
    """v3 snapshots persist the pruning block metadata; older v3 files
    without it must still load and serve pruned queries (the loader
    recomputes blocks on first use)."""

    def test_engine_and_segments_carry_block_sections(
        self, snapshot_dir, segmented_snapshot_dir
    ):
        engine_bin = _generation_dir(snapshot_dir) / "engine.bin"
        names = MappedSections.open(engine_bin).names()
        assert "blk#span" in names
        for prefix in ("term", "ent"):
            for suffix in _BLOCK_SUFFIXES:
                assert f"{prefix}#{suffix}" in names
        seg_gen = _generation_dir(segmented_snapshot_dir)
        for seg_file in sorted(seg_gen.glob("segment-*.bin")):
            assert "blk#span" in MappedSections.open(seg_file).names()
        # the write buffer preserves postings order and is hydrated on
        # load, so it must NOT carry block sections
        buffer_names = MappedSections.open(seg_gen / "buffer.bin").names()
        assert not any(_is_block_section(n) for n in buffer_names)

    def test_loaded_engine_adopts_stored_blocks(
        self, built_finder, loaded_finder, tiny_dataset
    ):
        engine = loaded_finder.query_engine()
        # adopted from the snapshot, not recomputed on first pruned use
        assert engine._term_blocks
        loaded_finder.engine = "columnar-pruned"
        try:
            for need in tiny_dataset.queries:
                assert loaded_finder.find_experts(need, window=2) == (
                    built_finder.find_experts(need, window=2)
                )
        finally:
            loaded_finder.engine = "columnar"
        assert loaded_finder.pruning_stats.pruned_queries >= len(
            tiny_dataset.queries
        )

    def test_block_span_round_trips(self, tiny_dataset, tmp_path):
        finder = ExpertFinder.build(
            tiny_dataset.merged_graph,
            tiny_dataset.candidates_for(None),
            tiny_dataset.analyzer,
            FinderConfig(),
            corpus=tiny_dataset.corpus,
            block_span=48,
        )
        assert finder.query_engine().block_span == 48
        directory = tmp_path / "span48"
        finder.save(directory)
        loaded = ExpertFinder.load(directory, tiny_dataset.analyzer)
        assert loaded.query_engine().block_span == 48

    def test_pre_block_monolithic_snapshot_serves_pruned(
        self, built_finder, tiny_dataset, tmp_path
    ):
        directory = tmp_path / "preblock"
        built_finder.save(directory)
        _strip_block_sections(_generation_dir(directory) / "engine.bin")
        loaded = ExpertFinder.load(directory, tiny_dataset.analyzer)
        engine = loaded.query_engine()
        assert not engine._term_blocks  # nothing adopted...
        loaded.engine = "columnar-pruned"
        for need in tiny_dataset.queries:
            assert loaded.find_experts(need, window=2) == (
                built_finder.find_experts(need, window=2)
            )
        assert loaded.pruning_stats.pruned_queries == len(tiny_dataset.queries)
        assert engine._term_blocks  # ...recomputed on first pruned use

    def test_pre_block_segmented_snapshot_serves_pruned(
        self, segmented_finder, analyzer, tmp_path
    ):
        directory = tmp_path / "preblock-seg"
        segmented_finder.save(directory)
        gen = _generation_dir(directory)
        for seg_file in sorted(gen.glob("segment-*.bin")):
            _strip_block_sections(seg_file)
        loaded = ExpertFinder.load(directory, analyzer)
        loaded.engine = "columnar-pruned"
        for need in _SEG_NEEDS:
            assert loaded.find_experts(need, window=2) == (
                segmented_finder.find_experts(need, window=2)
            )
        assert loaded.pruning_stats.pruned_queries == len(_SEG_NEEDS)

    def test_pruned_queries_leave_segments_unhydrated(
        self, segmented_finder, analyzer, tmp_path
    ):
        directory = tmp_path / "lazy-pruned"
        segmented_finder.save(directory)
        loaded = ExpertFinder.load(directory, analyzer)
        loaded.engine = "columnar-pruned"
        segments = loaded.segmented_index._segments
        assert all(seg._term_index is None for seg in segments)
        for need in _SEG_NEEDS:
            assert loaded.find_experts(need, window=2) == (
                segmented_finder.find_experts(need, window=2)
            )
        # pruned scoring reads the mapped columns and block maxima only
        assert all(seg._term_index is None for seg in segments)

    def test_rejects_malformed_block_sections(
        self, built_finder, tiny_dataset, tmp_path
    ):
        directory = tmp_path / "badblocks"
        built_finder.save(directory)
        engine_bin = _generation_dir(directory) / "engine.bin"
        mapped = MappedSections.open(engine_bin)
        sections = []
        for name in mapped.names():
            dtype, offset, length = mapped._toc[name]
            data = bytes(mapped._view[offset:offset + length])
            if name == "term#bmax":
                data = data[:-8]  # drop one block maximum
            sections.append((name, dtype, data))
        del mapped
        write_sections(engine_bin, sections)
        with pytest.raises(StorageFormatError, match="block sections"):
            load_finder(directory, tiny_dataset.analyzer)


# -- sharded snapshots ---------------------------------------------------------

from repro.synthetic.stream import (  # noqa: E402
    stream_candidates,
    stream_queries,
    stream_resources,
)

_SHARD_CANDS = stream_candidates(7)
_SHARD_NEEDS = stream_queries(4, seed=23)


def _build_sharded(analyzer, shards=3):
    finder = _ExpertFinder.from_stream(
        _SHARD_CANDS,
        stream_resources(_SHARD_CANDS, 70, seed=23),
        analyzer,
        FinderConfig(window=None),
        shards=shards,
    )
    # leave post-build streaming state behind too: one indexed observe
    # and one language-cut (evidence-only) observe
    finder.observe("post1", "a late freestyle swimming report", [(_SHARD_CANDS[0], 1)])
    finder.observe(
        "post2",
        "questa e una bella giornata per nuotare in piscina",
        [(_SHARD_CANDS[1], 1)],
    )
    return finder


@pytest.fixture(scope="module")
def sharded_finder(analyzer):
    return _build_sharded(analyzer)


@pytest.fixture(scope="module")
def sharded_snapshot_dir(sharded_finder, tmp_path_factory):
    directory = tmp_path_factory.mktemp("sharded") / "finder"
    sharded_finder.save(directory)
    return directory


@pytest.fixture(scope="module")
def loaded_sharded(sharded_snapshot_dir, analyzer):
    return ExpertFinder.load(sharded_snapshot_dir, analyzer)


class TestShardedRoundTrip:
    def test_layout(self, sharded_snapshot_dir, sharded_finder):
        gen = _generation_dir(sharded_snapshot_dir)
        for name in ("stats.bin", "evidence.bin", "shards.jsonl",
                     "shard-0000.bin", "shard-0001.bin", "shard-0002.bin"):
            assert (gen / name).is_file(), name
        assert not (gen / "shard-0003.bin").exists()

    def test_mode_and_shape_survive(self, loaded_sharded, sharded_finder):
        assert loaded_sharded.index_mode == "sharded"
        loaded_stats = loaded_sharded.sharded_index.stats
        built_stats = sharded_finder.sharded_index.stats
        assert loaded_stats.shards == built_stats.shards == 3
        assert loaded_stats.shard_docs == built_stats.shard_docs
        assert loaded_stats.documents == built_stats.documents
        assert (
            loaded_sharded.indexed_resources == sharded_finder.indexed_resources
        )

    @pytest.mark.parametrize("engine", ("object", "columnar", "columnar-pruned"))
    def test_rankings_survive(self, loaded_sharded, sharded_finder, engine):
        loaded_sharded.engine = engine
        for need in _SHARD_NEEDS:
            for window in (5, None, 0.5):
                assert loaded_sharded.find_experts(need, window=window) == (
                    sharded_finder.find_experts(need, window=window)
                )

    def test_scatter_pool_over_mapped_shards(self, loaded_sharded, sharded_finder):
        loaded_sharded.engine = "columnar"
        executor = loaded_sharded.start_scatter_pool()
        try:
            assert executor.worker_count == 3
            for need in _SHARD_NEEDS:
                assert loaded_sharded.find_experts(need, window=6) == (
                    sharded_finder.find_experts(need, window=6)
                )
        finally:
            loaded_sharded.close_scatter_pool()

    def test_observe_after_load_reaches_restarted_pool(
        self, sharded_snapshot_dir, analyzer
    ):
        loaded = ExpertFinder.load(sharded_snapshot_dir, analyzer)
        reference = ExpertFinder.load(sharded_snapshot_dir, analyzer)
        loaded.engine = "columnar"
        loaded.observe("late1", "one more gold medal race recap",
                       [(_SHARD_CANDS[2], 1)])
        reference.observe("late1", "one more gold medal race recap",
                          [(_SHARD_CANDS[2], 1)])
        loaded.start_scatter_pool()
        try:
            # workers open the on-disk state, so the post-load observe
            # must be replayed into them
            for need in _SHARD_NEEDS:
                assert loaded.find_experts(need, window=6) == (
                    reference.find_experts(need, window=6)
                )
            # a restarted pool re-opens the disk state; the replay log
            # must cover it again
            loaded.close_scatter_pool()
            loaded.start_scatter_pool()
            for need in _SHARD_NEEDS:
                assert loaded.find_experts(need, window=6) == (
                    reference.find_experts(need, window=6)
                )
        finally:
            loaded.close_scatter_pool()

    def test_resave_roundtrip(self, loaded_sharded, sharded_finder, tmp_path, analyzer):
        directory = tmp_path / "resave"
        loaded_sharded.save(directory)
        again = ExpertFinder.load(directory, analyzer)
        for need in _SHARD_NEEDS:
            assert again.find_experts(need) == sharded_finder.find_experts(need)

    def test_jsonl_save_rejected(self, sharded_finder, tmp_path):
        with pytest.raises(ValueError, match="v3"):
            sharded_finder.save(tmp_path / "flat", snapshot_format="jsonl")


class TestShardedFormatGuards:
    @pytest.fixture
    def broken_dir(self, sharded_finder, tmp_path):
        directory = tmp_path / "broken"
        sharded_finder.save(directory)
        return directory

    def test_manifest_shard_count_mismatch(self, broken_dir, analyzer):
        _edit_manifest(
            _generation_dir(broken_dir) / "shards.jsonl",
            lambda records: [
                {**r, "shards": 5} if r["type"] == "manifest" else r
                for r in records
            ],
        )
        with pytest.raises(StorageFormatError, match="declares"):
            load_finder(broken_dir, analyzer)

    def test_manifest_out_of_order(self, broken_dir, analyzer):
        _edit_manifest(
            _generation_dir(broken_dir) / "shards.jsonl",
            lambda records: [records[0]] + list(reversed(records[1:])),
        )
        with pytest.raises(StorageFormatError, match="order"):
            load_finder(broken_dir, analyzer)

    def test_missing_shard_file(self, broken_dir, analyzer):
        (_generation_dir(broken_dir) / "shard-0001.bin").unlink()
        with pytest.raises(StorageFormatError, match="missing"):
            load_finder(broken_dir, analyzer)

    def test_meta_invalid_shard_count(self, broken_dir, analyzer):
        _edit_manifest(
            _generation_dir(broken_dir) / "meta.jsonl",
            lambda records: [
                {**r, "shards": 0} if r["type"] == "snapshot" else r
                for r in records
            ],
        )
        with pytest.raises(StorageFormatError, match="shard count"):
            load_finder(broken_dir, analyzer)

    def test_stats_document_count_cross_checked(self, broken_dir, analyzer):
        _edit_manifest(
            _generation_dir(broken_dir) / "meta.jsonl",
            lambda records: [
                {**r, "indexed": r["indexed"] + 1}
                if r["type"] == "counts"
                else r
                for r in records
            ],
        )
        with pytest.raises(StorageFormatError, match="statistics cover"):
            load_finder(broken_dir, analyzer)

    def test_open_shard_rejects_unsharded_generation(
        self, snapshot_dir, analyzer
    ):
        from repro.storage.snapshot import open_shard

        with pytest.raises(StorageFormatError, match="not a sharded"):
            open_shard(_generation_dir(snapshot_dir), 0)

    def test_open_shard_rejects_bad_index(self, broken_dir):
        from repro.storage.snapshot import open_shard

        with pytest.raises(ValueError, match="shard must be"):
            open_shard(_generation_dir(broken_dir), 7)
