"""Finder snapshot round-trip tests over the TINY dataset."""

import pytest

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.storage.jsonl import StorageFormatError
from repro.storage.snapshot import SNAPSHOT_VERSION, load_finder, save_finder


@pytest.fixture(scope="module")
def built_finder(tiny_dataset):
    return ExpertFinder.build(
        tiny_dataset.merged_graph,
        tiny_dataset.candidates_for(None),
        tiny_dataset.analyzer,
        FinderConfig(),
        corpus=tiny_dataset.corpus,
    )


@pytest.fixture(scope="module")
def snapshot_dir(built_finder, tmp_path_factory):
    directory = tmp_path_factory.mktemp("snapshot") / "finder"
    built_finder.save(directory)
    return directory


@pytest.fixture(scope="module")
def loaded_finder(snapshot_dir, tiny_dataset):
    return ExpertFinder.load(snapshot_dir, tiny_dataset.analyzer)


class TestRoundTrip:
    def test_identical_rankings_on_all_queries(
        self, built_finder, loaded_finder, tiny_dataset
    ):
        """Every query must rank identically — candidates, exact scores,
        and support counts (ExpertScore equality compares all three)."""
        for need in tiny_dataset.queries:
            assert loaded_finder.find_experts(need) == built_finder.find_experts(need)

    def test_identical_rankings_under_overrides(
        self, built_finder, loaded_finder, tiny_dataset
    ):
        need = tiny_dataset.queries[0]
        for alpha, window in ((0.0, None), (1.0, 10), (0.5, 0.25)):
            assert loaded_finder.find_experts(
                need, alpha=alpha, window=window
            ) == built_finder.find_experts(need, alpha=alpha, window=window)

    def test_config_preserved(self, built_finder, loaded_finder):
        assert loaded_finder.config == built_finder.config

    def test_counts_preserved(self, built_finder, loaded_finder):
        assert loaded_finder.indexed_resources == built_finder.indexed_resources
        assert dict(loaded_finder.evidence_counts) == dict(
            built_finder.evidence_counts
        )

    def test_evidence_relation_preserved(self, built_finder, loaded_finder):
        assert {
            doc: list(map(tuple, supporters))
            for doc, supporters in loaded_finder.evidence_of.items()
        } == {
            doc: list(map(tuple, supporters))
            for doc, supporters in built_finder.evidence_of.items()
        }

    def test_top_k_fast_path_agrees_after_load(self, loaded_finder, tiny_dataset):
        need = tiny_dataset.queries[0]
        full = loaded_finder.match_resources(need)
        for k in (1, 5, len(full), len(full) + 10):
            assert loaded_finder.match_resources(need, limit=k) == full[:k]

    def test_streaming_continues_after_load(self, snapshot_dir, tiny_dataset):
        finder = ExpertFinder.load(snapshot_dir, tiny_dataset.analyzer)
        candidate = next(iter(finder.evidence_counts))
        before = finder.evidence_count(candidate)
        assert finder.observe(
            "snapshot:new:1",
            "an incredibly rare zorpify gadget review",
            [(candidate, 1)],
        )
        assert finder.evidence_count(candidate) == before + 1
        assert finder.indexed_resources >= 1


class TestFormatGuards:
    def test_load_missing_directory(self, tmp_path, tiny_dataset):
        with pytest.raises((StorageFormatError, FileNotFoundError)):
            load_finder(tmp_path / "nope", tiny_dataset.analyzer)

    def test_load_rejects_future_snapshot_version(
        self, built_finder, tiny_dataset, tmp_path
    ):
        directory = tmp_path / "future"
        save_finder(built_finder, directory)
        meta = directory / "meta.jsonl"
        text = meta.read_text(encoding="utf-8")
        meta.write_text(
            text.replace(
                f'"snapshot_version":{SNAPSHOT_VERSION}',
                f'"snapshot_version":{SNAPSHOT_VERSION + 1}',
            ),
            encoding="utf-8",
        )
        with pytest.raises(StorageFormatError):
            load_finder(directory, tiny_dataset.analyzer)

    def test_load_rejects_corrupt_meta(self, built_finder, tiny_dataset, tmp_path):
        directory = tmp_path / "corrupt"
        save_finder(built_finder, directory)
        (directory / "meta.jsonl").write_text("not json\n", encoding="utf-8")
        with pytest.raises(StorageFormatError):
            load_finder(directory, tiny_dataset.analyzer)
