"""Unit tests for the binary section container (snapshot v3 storage)."""

import os
import struct
import zlib

import pytest

from repro.storage.binary import (
    CONTAINER_VERSION,
    HEADER_SIZE,
    MAGIC,
    MappedSections,
    encode_values,
    pack_strings,
    write_sections,
)
from repro.storage.jsonl import StorageFormatError


@pytest.fixture
def container(tmp_path):
    path = tmp_path / "data.bin"
    write_sections(
        path,
        [
            ("ints", "q", [0, 1, -2, 2**40, -(2**40)]),
            ("floats", "d", [0.0, -1.5, 3.141592653589793, 1e300]),
            ("raw", "B", b"\x00\x01\xff binary payload"),
            *pack_strings("labels", ["alpha", "", "日本語", "tail"]),
        ],
    )
    return path


class TestRoundTrip:
    def test_numeric_sections(self, container):
        mapped = MappedSections.open(container)
        assert list(mapped.array("ints")) == [0, 1, -2, 2**40, -(2**40)]
        assert list(mapped.array("floats")) == [
            0.0, -1.5, 3.141592653589793, 1e300,
        ]
        mapped.close()

    def test_blob_and_strings(self, container):
        mapped = MappedSections.open(container)
        assert bytes(mapped.blob("raw")) == b"\x00\x01\xff binary payload"
        assert mapped.strings("labels") == ["alpha", "", "日本語", "tail"]
        mapped.close()

    def test_names_and_path(self, container):
        mapped = MappedSections.open(container)
        assert set(mapped.names()) == {
            "ints", "floats", "raw", "labels", "labels#off",
        }
        assert mapped.path == container
        mapped.close()

    def test_empty_sections_round_trip(self, tmp_path):
        path = tmp_path / "empty.bin"
        write_sections(
            path,
            [("nothing", "q", []), ("blank", "B", b""),
             *pack_strings("none", [])],
        )
        mapped = MappedSections.open(path)
        assert list(mapped.array("nothing")) == []
        assert bytes(mapped.blob("blank")) == b""
        assert mapped.strings("none") == []
        mapped.close()

    def test_many_sections_toc_sizing(self, tmp_path):
        # enough sections that the TOC length feeds back into offsets
        path = tmp_path / "many.bin"
        sections = [(f"col-{i:04d}", "q", [i, i * i]) for i in range(120)]
        write_sections(path, sections)
        mapped = MappedSections.open(path)
        for i in range(120):
            assert list(mapped.array(f"col-{i:04d}")) == [i, i * i]
        mapped.close()

    def test_sections_are_eight_byte_aligned(self, container):
        mapped = MappedSections.open(container)
        for name in mapped.names():
            _dtype, offset, _length = mapped._toc[name]
            assert offset % 8 == 0
        mapped.close()

    def test_no_temporary_files_left_behind(self, container):
        leftovers = [p for p in container.parent.iterdir() if p != container]
        assert leftovers == []


class TestWriterGuards:
    def test_rejects_duplicate_section_names(self, tmp_path):
        with pytest.raises(ValueError, match="duplicate section"):
            write_sections(
                tmp_path / "dup.bin", [("x", "q", [1]), ("x", "q", [2])]
            )

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            encode_values("f", [1.0])

    def test_blob_rejects_numbers(self):
        with pytest.raises(TypeError, match="bytes-like"):
            encode_values("B", [1, 2, 3])

    def test_encode_normalizes_narrow_int_arrays(self):
        from array import array

        assert encode_values("q", array("l", [1, 2])) == encode_values(
            "q", [1, 2]
        )


class TestCorruptionDetection:
    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            MappedSections.open(tmp_path / "nope.bin")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "zero.bin"
        path.write_bytes(b"")
        with pytest.raises(StorageFormatError, match="empty file"):
            MappedSections.open(path)

    def test_bad_magic(self, tmp_path, container):
        data = bytearray(container.read_bytes())
        data[:8] = b"NOTMAGIC"
        bad = tmp_path / "badmagic.bin"
        bad.write_bytes(bytes(data))
        with pytest.raises(StorageFormatError, match="not a repro binary"):
            MappedSections.open(bad)

    def test_future_container_version(self, tmp_path, container):
        data = bytearray(container.read_bytes())
        header = struct.Struct("<8sIIQI4x")
        _magic, _version, toc_len, size, crc = header.unpack_from(data, 0)
        header.pack_into(
            data, 0, MAGIC, CONTAINER_VERSION + 1, toc_len, size, crc
        )
        bad = tmp_path / "future.bin"
        bad.write_bytes(bytes(data))
        with pytest.raises(StorageFormatError, match="container version"):
            MappedSections.open(bad)

    def test_truncation_at_every_region(self, tmp_path, container):
        data = container.read_bytes()
        # header, mid-header, TOC, payload, last byte
        for cut in (0, 7, HEADER_SIZE - 1, HEADER_SIZE + 3,
                    len(data) // 2, len(data) - 1):
            bad = tmp_path / f"cut-{cut}.bin"
            bad.write_bytes(data[:cut])
            with pytest.raises(StorageFormatError) as err:
                MappedSections.open(bad)
            assert str(bad) in str(err.value)

    def test_bit_flip_breaks_checksum(self, tmp_path, container):
        data = bytearray(container.read_bytes())
        data[-3] ^= 0x40
        bad = tmp_path / "flip.bin"
        bad.write_bytes(bytes(data))
        with pytest.raises(StorageFormatError, match="checksum mismatch"):
            MappedSections.open(bad)

    def test_trailing_garbage_detected(self, tmp_path, container):
        bad = tmp_path / "grown.bin"
        bad.write_bytes(container.read_bytes() + b"xxxx")
        with pytest.raises(StorageFormatError, match="declares"):
            MappedSections.open(bad)

    def test_toc_section_out_of_bounds(self, tmp_path):
        toc = b'{"sections":[{"name":"x","dtype":"q","offset":96,"length":64}]}'
        toc = toc.ljust((len(toc) + 7) & ~7, b"\0")
        body = toc + b"\0" * 8
        header = struct.Struct("<8sIIQI4x").pack(
            MAGIC, CONTAINER_VERSION, len(toc),
            HEADER_SIZE + len(body), zlib.crc32(body),
        )
        bad = tmp_path / "oob.bin"
        bad.write_bytes(header + body)
        with pytest.raises(StorageFormatError, match="table of contents"):
            MappedSections.open(bad)


class TestAccessGuards:
    def test_missing_section(self, container):
        mapped = MappedSections.open(container)
        try:
            with pytest.raises(StorageFormatError, match="missing section"):
                mapped.array("ghost")
        finally:
            mapped.close()

    def test_dtype_mismatch(self, container):
        mapped = MappedSections.open(container)
        try:
            with pytest.raises(StorageFormatError, match="dtype"):
                mapped.array("raw")
            with pytest.raises(StorageFormatError, match="dtype"):
                mapped.blob("ints")
        finally:
            mapped.close()

    def test_invalid_utf8_strings(self, tmp_path):
        path = tmp_path / "badutf8.bin"
        write_sections(
            path,
            [
                ("s#off", "q", [0, 2]),
                ("s", "B", b"\xff\xfe"),
            ],
        )
        mapped = MappedSections.open(path)
        try:
            with pytest.raises(StorageFormatError, match="not valid UTF-8"):
                mapped.strings("s")
        finally:
            mapped.close()

    def test_string_offsets_must_span_blob(self, tmp_path):
        path = tmp_path / "span.bin"
        write_sections(
            path,
            [("s#off", "q", [0, 2]), ("s", "B", b"abcdef")],
        )
        mapped = MappedSections.open(path)
        try:
            with pytest.raises(StorageFormatError, match="offsets disagree"):
                mapped.strings("s")
        finally:
            mapped.close()


class TestAtomicity:
    def test_failed_write_leaves_existing_file_intact(self, tmp_path):
        path = tmp_path / "keep.bin"
        write_sections(path, [("v", "q", [1])])
        before = path.read_bytes()
        with pytest.raises(TypeError):
            write_sections(path, [("v", "q", [1]), ("bad", "B", [1, 2])])
        assert path.read_bytes() == before
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []

    def test_replace_failure_cleans_up_temp(self, tmp_path, monkeypatch):
        path = tmp_path / "out.bin"

        def boom(src, dst):
            raise OSError("disk detached")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="disk detached"):
            write_sections(path, [("v", "q", [1])])
        monkeypatch.undo()
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []
