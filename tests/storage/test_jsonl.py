"""Unit tests for the JSON-lines storage primitives."""

import gzip
import json

import pytest

from repro.storage.jsonl import StorageFormatError, read_records, write_records


class TestRoundTrip:
    def test_plain_file(self, tmp_path):
        path = tmp_path / "data.jsonl"
        records = [{"a": 1}, {"b": [1, 2]}, {"c": {"x": "y"}}]
        assert write_records(path, "test", records) == 3
        assert list(read_records(path, "test")) == records

    def test_gzip_file(self, tmp_path):
        path = tmp_path / "data.jsonl.gz"
        write_records(path, "test", [{"n": i} for i in range(100)])
        loaded = list(read_records(path, "test"))
        assert loaded == [{"n": i} for i in range(100)]
        # really compressed
        with open(path, "rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"

    def test_empty_record_list(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert write_records(path, "test", []) == 0
        assert list(read_records(path, "test")) == []

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "f.jsonl"
        write_records(path, "test", [{"x": 1}])
        assert path.exists()

    def test_unicode_roundtrip(self, tmp_path):
        path = tmp_path / "u.jsonl"
        write_records(path, "test", [{"text": "caffè ☕ milano"}])
        assert next(iter(read_records(path, "test")))["text"] == "caffè ☕ milano"


class TestValidation:
    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "k.jsonl"
        write_records(path, "alpha", [])
        with pytest.raises(StorageFormatError, match="expected kind"):
            list(read_records(path, "beta"))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("")
        with pytest.raises(StorageFormatError, match="empty"):
            list(read_records(path, "x"))

    def test_non_storage_file_rejected(self, tmp_path):
        path = tmp_path / "n.jsonl"
        path.write_text('{"something": "else"}\n')
        with pytest.raises(StorageFormatError, match="not a repro storage file"):
            list(read_records(path, "x"))

    def test_malformed_header_rejected(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text("not json\n")
        with pytest.raises(StorageFormatError, match="malformed header"):
            list(read_records(path, "x"))

    def test_malformed_record_rejected(self, tmp_path):
        path = tmp_path / "r.jsonl"
        header = json.dumps({"format": "repro-jsonl", "version": 1, "kind": "x"})
        path.write_text(header + "\n{broken\n")
        with pytest.raises(StorageFormatError, match="malformed record"):
            list(read_records(path, "x"))

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "v.jsonl"
        header = json.dumps({"format": "repro-jsonl", "version": 99, "kind": "x"})
        path.write_text(header + "\n")
        with pytest.raises(StorageFormatError, match="unsupported version"):
            list(read_records(path, "x"))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "b.jsonl"
        header = json.dumps({"format": "repro-jsonl", "version": 1, "kind": "x"})
        path.write_text(header + "\n\n{\"a\": 1}\n\n")
        assert list(read_records(path, "x")) == [{"a": 1}]
