"""Round-trip tests for social graph serialization."""

import pytest

from repro.socialgraph.graph import SocialGraph
from repro.socialgraph.metamodel import (
    Platform,
    RelationKind,
    Resource,
    ResourceContainer,
    SocialRelation,
    UserProfile,
)
from repro.storage.graph_io import load_graph, save_graph
from repro.storage.jsonl import StorageFormatError


@pytest.fixture
def graph():
    g = SocialGraph(Platform.FACEBOOK)
    g.add_profile(UserProfile(
        profile_id="a", platform=Platform.FACEBOOK, display_name="Alice",
        text="bio a", urls=("http://a",), person_id="person:a"))
    g.add_profile(UserProfile(
        profile_id="b", platform=Platform.FACEBOOK, display_name="Bob"))
    g.add_profile(UserProfile(
        profile_id="c", platform=Platform.FACEBOOK, display_name="Cleo"))
    g.add_resource(Resource(
        resource_id="r1", platform=Platform.FACEBOOK, text="post one",
        urls=("http://p1",), language="en", timestamp=3))
    g.add_resource(Resource(
        resource_id="r2", platform=Platform.FACEBOOK, text="post two"))
    g.add_container(ResourceContainer(
        container_id="g1", platform=Platform.FACEBOOK, name="group", text="about"))
    g.add_social_relation(SocialRelation("a", "b", RelationKind.FRIENDSHIP))
    g.add_social_relation(SocialRelation("a", "c", RelationKind.FOLLOWS))
    g.link_resource("a", "r1", RelationKind.CREATES)
    g.link_resource("b", "r1", RelationKind.ANNOTATES)
    g.relate_to_container("a", "g1")
    g.put_in_container("g1", "r2")
    return g


class TestGraphRoundTrip:
    def test_nodes_identical(self, graph, tmp_path):
        path = tmp_path / "g.jsonl"
        save_graph(graph, path)
        loaded = load_graph(path)
        assert loaded.platform is Platform.FACEBOOK
        assert loaded.counts() == graph.counts()
        for profile in graph.profiles():
            assert loaded.profile(profile.profile_id) == profile
        for resource in graph.resources():
            assert loaded.resource(resource.resource_id) == resource
        for container in graph.containers():
            assert loaded.container(container.container_id) == container

    def test_edges_identical(self, graph, tmp_path):
        path = tmp_path / "g.jsonl.gz"
        save_graph(graph, path)
        loaded = load_graph(path)
        assert set(loaded.friends_of("a")) == {"b"}
        assert loaded.followed_by("a") == ("c",)
        assert set(loaded.direct_resources("a")) == set(graph.direct_resources("a"))
        assert set(loaded.direct_resources("b")) == set(graph.direct_resources("b"))
        assert loaded.containers_of("a") == ("g1",)
        assert loaded.resources_in("g1") == ("r2",)

    def test_merged_graph_roundtrip(self, graph, tmp_path):
        from repro.socialgraph.graph import merge_graphs

        merged = merge_graphs([graph])
        path = tmp_path / "m.jsonl"
        save_graph(merged, path)
        loaded = load_graph(path)
        assert loaded.platform is None

    def test_tiny_dataset_graph_roundtrip(self, tiny_dataset, tmp_path):
        path = tmp_path / "merged.jsonl.gz"
        save_graph(tiny_dataset.merged_graph, path)
        loaded = load_graph(path)
        original = tiny_dataset.merged_graph
        assert loaded.counts() == original.counts()
        # spot-check evidence equality through the gatherer
        from repro.socialgraph.distance import ResourceGatherer

        candidate = tiny_dataset.candidates_for(None)[tiny_dataset.person_ids[0]][0]
        a = ResourceGatherer(original).gather(candidate, 2)
        b = ResourceGatherer(loaded).gather(candidate, 2)
        assert {(i.node_id, i.distance) for i in a} == {
            (i.node_id, i.distance) for i in b
        }

    def test_wrong_kind_file(self, tmp_path):
        from repro.storage.jsonl import write_records

        path = tmp_path / "x.jsonl"
        write_records(path, "something-else", [])
        with pytest.raises(StorageFormatError):
            load_graph(path)
