"""The documented public API surface must exist and stay importable."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.baselines",
    "repro.cli",
    "repro.core",
    "repro.crowd",
    "repro.entity",
    "repro.evaluation",
    "repro.experiments",
    "repro.extraction",
    "repro.index",
    "repro.socialgraph",
    "repro.storage",
    "repro.synthetic",
    "repro.textproc",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports(module_name):
    module = importlib.import_module(module_name)
    assert module is not None


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_entries_resolve(module_name):
    """Every name in a package's __all__ must be importable from it."""
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", ()):
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_top_level_exports():
    import repro

    assert repro.__version__ == "1.0.0"
    for name in ("ExpertFinder", "FinderConfig", "build_dataset", "DatasetScale",
                 "Platform", "ExpertiseNeed", "ExpertScore"):
        assert hasattr(repro, name)


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_modules_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 40


def test_doctests_pass():
    """Run the doctests embedded in the core public modules."""
    import doctest

    for module_name in (
        "repro.textproc.sanitizer",
        "repro.textproc.tokenizer",
        "repro.textproc.stemmer",
        "repro.textproc.stopwords",
        "repro.core.scoring",
        "repro.evaluation.metrics",
        "repro.crowd.jury",
        "repro.evaluation.significance",
        "repro.synthetic.queries",
        "repro.synthetic.seeds",
    ):
        module = importlib.import_module(module_name)
        failures, _ = doctest.testmod(module)
        assert failures == 0, f"doctest failures in {module_name}"
