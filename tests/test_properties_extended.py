"""Property-based tests over the higher layers: storage round-trips on
generated graphs, jury-selection invariants, routing probabilities, and
distance-weight/aggregation laws."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd.jury import JurorProfile, JurySelector, majority_error_rate
from repro.crowd.routing import ContactModel, QuestionRouter, RoutingStrategy
from repro.core.ranking import ExpertScore
from repro.socialgraph.graph import SocialGraph
from repro.socialgraph.metamodel import (
    Platform,
    RelationKind,
    Resource,
    SocialRelation,
    UserProfile,
)
from repro.storage.graph_io import load_graph, save_graph

# -- random graph strategy --------------------------------------------------------

_ids = st.integers(min_value=0, max_value=9).map(lambda i: f"n{i}")


@st.composite
def social_graphs(draw) -> SocialGraph:
    graph = SocialGraph(Platform.TWITTER)
    profile_ids = draw(st.sets(_ids, min_size=1, max_size=6))
    for pid in sorted(profile_ids):
        graph.add_profile(
            UserProfile(
                profile_id=f"p:{pid}",
                platform=Platform.TWITTER,
                display_name=pid,
                text=draw(st.text(alphabet="abc ", max_size=12)),
            )
        )
    resource_ids = draw(st.sets(_ids, min_size=0, max_size=6))
    for rid in sorted(resource_ids):
        graph.add_resource(
            Resource(
                resource_id=f"r:{rid}",
                platform=Platform.TWITTER,
                text=draw(st.text(alphabet="xyz ", max_size=12)),
                timestamp=draw(st.integers(min_value=0, max_value=100)),
            )
        )
    profiles = sorted(f"p:{pid}" for pid in profile_ids)
    resources = sorted(f"r:{rid}" for rid in resource_ids)
    # random follows
    for a in profiles:
        for b in profiles:
            if a != b and draw(st.booleans()):
                graph.add_social_relation(SocialRelation(a, b, RelationKind.FOLLOWS))
    # random ownership
    for r in resources:
        owner = draw(st.sampled_from(profiles))
        graph.link_resource(owner, r, RelationKind.CREATES)
    return graph


@settings(max_examples=30, deadline=None)
@given(social_graphs())
def test_graph_roundtrip_preserves_everything(tmp_path_factory, graph):
    path = tmp_path_factory.mktemp("prop") / "g.jsonl"
    save_graph(graph, path)
    loaded = load_graph(path)
    assert loaded.counts() == graph.counts()
    for profile in graph.profiles():
        assert loaded.profile(profile.profile_id) == profile
        assert set(loaded.followed_by(profile.profile_id)) == set(
            graph.followed_by(profile.profile_id)
        )
        assert set(loaded.friends_of(profile.profile_id)) == set(
            graph.friends_of(profile.profile_id)
        )
        assert set(loaded.direct_resources(profile.profile_id)) == set(
            graph.direct_resources(profile.profile_id)
        )
    for resource in graph.resources():
        assert loaded.resource(resource.resource_id) == resource


# -- jury invariants ----------------------------------------------------------------

_error_rates = st.lists(
    st.floats(min_value=0.0, max_value=0.49), min_size=1, max_size=9
)


@given(_error_rates)
def test_jer_bounded(rates):
    assert 0.0 <= majority_error_rate(rates) <= 1.0


@given(_error_rates)
def test_jer_below_half_for_sub_half_jurors(rates):
    """Majority of jurors who are each right more often than wrong is
    itself right more often than wrong."""
    assert majority_error_rate(rates) <= 0.5


@given(_error_rates, st.floats(min_value=0.0, max_value=0.49))
def test_adding_a_perfect_pair_never_hurts(rates, extra):
    """Adding two jurors at least as good as the worst juror (keeping
    the jury odd) never increases the JER — monotonicity that justifies
    the prefix sweep in JurySelector."""
    if len(rates) % 2 == 0:
        rates = rates[:-1] or [0.3]
    best = min(rates)
    improved = rates + [best, best]
    assert majority_error_rate(improved) <= majority_error_rate(rates) + 1e-12


@given(st.lists(st.floats(min_value=0.01, max_value=0.49), min_size=1, max_size=8))
def test_selector_never_returns_even_jury(rates):
    jurors = [JurorProfile(f"j{i}", r) for i, r in enumerate(rates)]
    decision = JurySelector(jurors).select()
    assert len(decision.members) % 2 == 1


@given(st.lists(st.floats(min_value=0.01, max_value=0.49), min_size=2, max_size=8))
def test_selector_prefers_lower_error_members(rates):
    jurors = [JurorProfile(f"j{i}", r) for i, r in enumerate(rates)]
    decision = JurySelector(jurors).select(max_size=1)
    chosen = decision.members[0]
    chosen_rate = next(j.error_rate for j in jurors if j.candidate_id == chosen)
    assert chosen_rate == min(rates)


# -- routing invariants ---------------------------------------------------------------

_models = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d", "e"]),
    st.builds(
        ContactModel,
        answer_probability=st.floats(min_value=0.0, max_value=1.0),
        response_time=st.floats(min_value=0.5, max_value=20.0),
    ),
    min_size=1,
    max_size=5,
)


@given(_models)
def test_routing_probability_consistent_across_strategies(models):
    router = QuestionRouter(models)
    ranked = [
        ExpertScore(candidate_id=cid, score=float(i + 1), supporting_resources=1)
        for i, cid in enumerate(sorted(models))
    ]
    k = len(ranked)
    par = router.plan(ranked, RoutingStrategy.PARALLEL, top_k=k)
    seq = router.plan(ranked, RoutingStrategy.SEQUENTIAL, top_k=k)
    assert par.answer_probability == seq.answer_probability
    assert 0.0 <= par.answer_probability <= 1.0
    assert par.contacts == seq.contacts == k


@given(_models)
def test_parallel_latency_never_slower(models):
    router = QuestionRouter(models)
    ranked = [
        ExpertScore(candidate_id=cid, score=float(i + 1), supporting_resources=1)
        for i, cid in enumerate(sorted(models))
    ]
    k = len(ranked)
    par = router.plan(ranked, RoutingStrategy.PARALLEL, top_k=k)
    seq = router.plan(ranked, RoutingStrategy.SEQUENTIAL, top_k=k)
    if par.expected_latency is not None and seq.expected_latency is not None:
        assert par.expected_latency <= seq.expected_latency + 1e-9


# -- hybrid waves cover exactly the chosen prefix -------------------------------------


@given(_models, st.integers(min_value=1, max_value=3))
def test_hybrid_waves_partition_contacts(models, wave_size):
    router = QuestionRouter(models)
    ranked = [
        ExpertScore(candidate_id=cid, score=float(i + 1), supporting_resources=1)
        for i, cid in enumerate(sorted(models))
    ]
    plan = router.plan(
        ranked, RoutingStrategy.HYBRID, top_k=len(ranked), wave_size=wave_size
    )
    flattened = [cid for wave in plan.waves for cid in wave]
    assert len(flattened) == len(set(flattened))  # nobody contacted twice
    assert plan.contacts == len(flattened)
    for wave in plan.waves[:-1]:
        assert len(wave) == wave_size  # only the last wave may be short
