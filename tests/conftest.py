"""Shared fixtures.

The TINY dataset (12 people, ~800 resources) takes ~1 s to build and is
shared session-wide; tests must treat it as read-only.
"""

from __future__ import annotations

import pytest

from repro.entity.annotator import EntityAnnotator
from repro.experiments.context import ExperimentContext
from repro.index.analyzer import ResourceAnalyzer
from repro.synthetic.dataset import DatasetScale, build_dataset
from repro.synthetic.seeds import build_knowledge_base
from repro.textproc.pipeline import TextPipeline


@pytest.fixture(scope="session")
def kb():
    """The synthetic knowledge base."""
    return build_knowledge_base()


@pytest.fixture(scope="session")
def pipeline():
    return TextPipeline()


@pytest.fixture(scope="session")
def annotator(kb):
    return EntityAnnotator(kb)


@pytest.fixture(scope="session")
def analyzer(pipeline, annotator):
    return ResourceAnalyzer(pipeline, annotator)


@pytest.fixture(scope="session")
def tiny_dataset():
    """The shared TINY evaluation dataset (read-only)."""
    return build_dataset(DatasetScale.TINY, seed=7)


@pytest.fixture(scope="session")
def tiny_context(tiny_dataset):
    """An experiment context over the shared TINY dataset."""
    from repro.evaluation.runner import ExperimentRunner

    return ExperimentContext(dataset=tiny_dataset, runner=ExperimentRunner(tiny_dataset))
