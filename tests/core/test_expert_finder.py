"""Integration-level tests for the ExpertFinder facade on a hand-built
micro graph (the paper's Fig.-1 scenario)."""

import pytest

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.core.need import ExpertiseNeed
from repro.socialgraph.graph import SocialGraph
from repro.socialgraph.metamodel import (
    Platform,
    RelationKind,
    Resource,
    SocialRelation,
    UserProfile,
)


@pytest.fixture(scope="module")
def fig1_graph():
    """Anna asks about freestyle swimmers. Alice tweeted about Phelps's
    freestyle gold medal; Charlie posted about his freestyle training;
    Bob's profile shows swimming as a hobby; Chuck only follows Bob;
    Peggy has nothing related."""
    g = SocialGraph(Platform.TWITTER)
    profiles = {
        "alice": "",
        "charlie": "",
        "bob": "hobby swimming",
        "chuck": "",
        "peggy": "i love cooking pasta and baking bread every single day",
    }
    for pid, text in profiles.items():
        g.add_profile(
            UserProfile(profile_id=pid, platform=Platform.TWITTER,
                        display_name=pid.title(), text=text)
        )
    g.add_resource(Resource(
        resource_id="t1", platform=Platform.TWITTER,
        text="michael phelps is the best great freestyle gold medal", language="en"))
    g.add_resource(Resource(
        resource_id="t2", platform=Platform.TWITTER,
        text="just finished 30min freestyle training at the swimming pool", language="en"))
    g.link_resource("alice", "t1", RelationKind.CREATES)
    g.link_resource("charlie", "t2", RelationKind.CREATES)
    g.add_social_relation(SocialRelation("chuck", "bob", RelationKind.FOLLOWS))
    return g


CANDIDATES = ("alice", "charlie", "bob", "chuck", "peggy")


@pytest.fixture(scope="module")
def finder(fig1_graph, analyzer):
    return ExpertFinder.build(
        fig1_graph, CANDIDATES, analyzer, FinderConfig(alpha=0.6, window=None)
    )


class TestFig1Scenario:
    def test_ranking_matches_paper_figure(self, finder):
        # "swimming" (not "swimmer"): Porter keeps the two stems apart,
        # so the hobby profile only matches the gerund form
        ranked = finder.find_experts("best freestyle swimming")
        ids = [e.candidate_id for e in ranked]
        # Alice and Charlie lead (direct resources), Bob follows via his
        # profile, Chuck only via following Bob; Peggy is absent
        assert ids.index("alice") < ids.index("bob")
        assert ids.index("charlie") < ids.index("bob")
        assert ids.index("bob") < ids.index("chuck")
        assert "peggy" not in ids

    def test_scores_strictly_positive_and_sorted(self, finder):
        ranked = finder.find_experts("best freestyle swimming")
        scores = [e.score for e in ranked]
        assert all(s > 0 for s in scores)
        assert scores == sorted(scores, reverse=True)

    def test_top_k(self, finder):
        assert len(finder.find_experts("freestyle", top_k=2)) == 2

    def test_need_object_accepted(self, finder):
        need = ExpertiseNeed(need_id="q", text="best freestyle swimmer", domain="sport")
        assert finder.find_experts(need)

    def test_unrelated_query_empty(self, finder):
        assert finder.find_experts("quantum chromodynamics lattice") == []


class TestDistanceConfigurations:
    def test_distance_0_profile_only(self, fig1_graph, analyzer):
        finder = ExpertFinder.build(
            fig1_graph, CANDIDATES, analyzer, FinderConfig(max_distance=0, window=None)
        )
        ranked = finder.find_experts("swimming hobby")
        assert [e.candidate_id for e in ranked] == ["bob"]

    def test_distance_1_includes_followed_profiles(self, fig1_graph, analyzer):
        # Table 1: "Expert Candidate follows User Profile" is distance-1
        # evidence, so Chuck is supported by Bob's profile — but at the
        # lower distance weight, behind Bob himself
        finder = ExpertFinder.build(
            fig1_graph, CANDIDATES, analyzer, FinderConfig(max_distance=1, window=None)
        )
        ranked = finder.find_experts("swimming")
        ids = [e.candidate_id for e in ranked]
        assert ids.index("bob") < ids.index("chuck")

    def test_evidence_counts(self, finder):
        assert finder.evidence_count("alice") == 2  # profile + t1
        assert finder.evidence_count("chuck") == 2  # profile + bob's profile
        assert finder.evidence_count("peggy") == 1


class TestMultiProfileCandidates:
    def test_grouped_candidates(self, fig1_graph, analyzer):
        candidates = {"person:ac": ("alice", "charlie"), "person:b": ("bob",)}
        finder = ExpertFinder.build(
            fig1_graph, candidates, analyzer, FinderConfig(window=None)
        )
        ranked = finder.find_experts("freestyle swimming")
        assert ranked[0].candidate_id == "person:ac"
        # both alice's and charlie's resources support the merged candidate
        assert finder.evidence_count("person:ac") == 4

    def test_min_distance_across_profiles(self, fig1_graph, analyzer):
        # bob's profile is distance 0 for candidate holding bob, even if
        # also reachable at distance 2 through chuck
        candidates = {"p": ("chuck", "bob")}
        finder = ExpertFinder.build(
            fig1_graph, candidates, analyzer, FinderConfig(window=None)
        )
        ranked = finder.find_experts("swimming hobby")
        assert ranked and ranked[0].candidate_id == "p"


class TestBuildValidation:
    def test_empty_candidates_rejected(self, fig1_graph, analyzer):
        with pytest.raises(ValueError):
            ExpertFinder.build(fig1_graph, [], analyzer)

    def test_alpha_override(self, finder):
        terms_only = finder.find_experts("best freestyle swimmer", alpha=1.0)
        assert terms_only  # term path alone still matches

    def test_window_override(self, finder):
        windowed = finder.find_experts("best freestyle swimmer", window=1)
        full = finder.find_experts("best freestyle swimmer", window=None)
        assert len(windowed) <= len(full)


class TestTopKFastPath:
    def test_int_window_fast_path_matches_full_retrieval(self, finder):
        """find_experts takes the bounded-heap retrieval when the window
        is an absolute count; the ranking must be unchanged."""
        need = "best freestyle swimming"
        for window in (1, 2, 100):
            fast = finder.find_experts(need, window=window)
            matches = finder.match_resources(need)
            slow = finder.rank_matches(matches, window=window)
            assert fast == slow

    def test_match_resources_limit_prefix(self, finder):
        need = "best freestyle swimming"
        full = finder.match_resources(need)
        for k in range(len(full) + 2):
            assert finder.match_resources(need, limit=k) == full[:k]


class TestParallelBuild:
    """The parallel cold-build pipeline must be invisible in the results:
    any worker count yields the serial finder, plus per-stage timings."""

    def test_build_stats_recorded(self, finder):
        stats = finder.build_stats
        assert stats is not None
        assert stats.workers == 1
        assert stats.nodes >= stats.indexed > 0
        assert stats.total_s == stats.gather_s + stats.analyze_s + stats.index_s
        payload = stats.as_dict()
        assert payload["indexed"] == finder.indexed_resources
        assert "nodes_per_s" in payload and "workers" in stats.render()

    def test_parallel_build_matches_serial(self, tiny_dataset):
        candidates = tiny_dataset.candidates_for(None)
        serial = ExpertFinder.build(
            tiny_dataset.merged_graph, candidates, tiny_dataset.analyzer,
            FinderConfig(),
        )
        parallel = ExpertFinder.build(
            tiny_dataset.merged_graph, candidates, tiny_dataset.analyzer,
            FinderConfig(), workers=2, chunk_size=128,
        )
        assert parallel.indexed_resources == serial.indexed_resources
        assert dict(parallel.evidence_counts) == dict(serial.evidence_counts)
        assert dict(parallel.evidence_of) == dict(serial.evidence_of)
        for need in tiny_dataset.queries:
            assert parallel.find_experts(need) == serial.find_experts(need)
        assert parallel.build_stats.workers == 2
        assert parallel.build_stats.analyzed == serial.build_stats.analyzed

    def test_parallel_build_with_corpus(self, tiny_dataset):
        candidates = tiny_dataset.candidates_for(None)
        serial = ExpertFinder.build(
            tiny_dataset.merged_graph, candidates, tiny_dataset.analyzer,
            FinderConfig(), corpus=tiny_dataset.corpus,
        )
        parallel = ExpertFinder.build(
            tiny_dataset.merged_graph, candidates, tiny_dataset.analyzer,
            FinderConfig(), corpus=tiny_dataset.corpus, workers=3, chunk_size=64,
        )
        # with a full corpus nothing is analyzed; sharded indexing remains
        assert parallel.build_stats.analyzed == 0
        for need in tiny_dataset.queries[:5]:
            assert parallel.find_experts(need) == serial.find_experts(need)

    def test_invalid_workers_rejected(self, fig1_graph, analyzer):
        with pytest.raises(ValueError):
            ExpertFinder.build(fig1_graph, CANDIDATES, analyzer, workers=0)
