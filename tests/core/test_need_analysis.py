"""Tests for expertise-need domain classification."""

import pytest

from repro.core.need_analysis import NeedAnalyzer
from repro.synthetic.queries import paper_queries
from repro.synthetic.vocab import DOMAINS


@pytest.fixture(scope="module")
def need_analyzer(pipeline, annotator):
    return NeedAnalyzer(pipeline, annotator)


class TestClassify:
    def test_sport_query(self, need_analyzer):
        assert need_analyzer.classify(
            "Who is the best freestyle swimmer, is it Michael Phelps?"
        ) == "sport"

    def test_computer_query(self, need_analyzer):
        assert need_analyzer.classify(
            "Which PHP function can I use in order to obtain the length of a string?"
        ) == "computer_engineering"

    def test_science_query(self, need_analyzer):
        assert need_analyzer.classify("Why is copper a good conductor?") == "science"

    def test_no_signal(self, need_analyzer):
        assert need_analyzer.classify("hello there how are you today") is None

    def test_all_thirty_paper_queries(self, need_analyzer):
        """The 30 labeled needs are the self-test: classification must
        be highly accurate on them."""
        needs = paper_queries()
        correct = sum(
            1 for need in needs if need_analyzer.classify(need) == need.domain
        )
        assert correct >= 26  # ≥ ~87% accuracy

    def test_scores_sorted_and_complete(self, need_analyzer):
        scores = need_analyzer.scores("famous european football teams")
        assert [s.domain for s in scores][0] == "sport"
        assert {s.domain for s in scores} == set(DOMAINS)
        values = [s.score for s in scores]
        assert values == sorted(values, reverse=True)

    def test_scores_normalized(self, need_analyzer):
        scores = need_analyzer.scores("famous songs of michael jackson")
        assert sum(s.score for s in scores) == pytest.approx(1.0, abs=1e-9)

    def test_entity_weight_validation(self, pipeline, annotator):
        with pytest.raises(ValueError):
            NeedAnalyzer(pipeline, annotator, entity_weight=1.5)

    def test_need_object_accepted(self, need_analyzer):
        needs = paper_queries()
        assert need_analyzer.classify(needs[0]) == needs[0].domain

    def test_ambiguous_entity_uses_context(self, need_analyzer):
        # "milan" alone → the city; with football context → sport
        assert need_analyzer.classify("restaurants in milan near the duomo") == "location"
        assert need_analyzer.classify(
            "milan against juventus in the champions league match"
        ) == "sport"
