"""Tests for contact-platform recommendation."""

import pytest

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.core.platform_choice import PlatformChooser
from repro.socialgraph.metamodel import Platform


@pytest.fixture(scope="module")
def chooser(tiny_dataset):
    finders = {
        platform: ExpertFinder.build(
            tiny_dataset.graphs[platform],
            tiny_dataset.candidates_for(platform),
            tiny_dataset.analyzer,
            FinderConfig(),
            corpus=tiny_dataset.corpus,
        )
        for platform in Platform
    }
    return PlatformChooser(finders)


class TestPlatformChooser:
    def test_requires_all_platforms(self, tiny_dataset):
        finder = ExpertFinder.build(
            tiny_dataset.graphs[Platform.TWITTER],
            tiny_dataset.candidates_for(Platform.TWITTER),
            tiny_dataset.analyzer,
            FinderConfig(),
            corpus=tiny_dataset.corpus,
        )
        with pytest.raises(ValueError):
            PlatformChooser({Platform.TWITTER: finder})

    def test_recommendation_structure(self, chooser, tiny_dataset):
        need = next(q for q in tiny_dataset.queries if q.domain == "sport")
        candidate = tiny_dataset.person_ids[0]
        rec = chooser.recommend(need, candidate)
        assert rec.candidate_id == candidate
        assert set(rec.scores) == set(Platform)
        assert all(s >= 0.0 for s in rec.scores.values())

    def test_platform_is_argmax(self, chooser, tiny_dataset):
        need = next(q for q in tiny_dataset.queries if q.domain == "music")
        for candidate in tiny_dataset.person_ids[:4]:
            rec = chooser.recommend(need, candidate)
            if rec.platform is not None:
                assert rec.scores[rec.platform] == max(rec.scores.values())

    def test_confidence_bounds(self, chooser, tiny_dataset):
        need = tiny_dataset.queries[0]
        for candidate in tiny_dataset.person_ids[:6]:
            rec = chooser.recommend(need, candidate)
            assert 0.0 <= rec.confidence <= 1.0

    def test_none_when_no_evidence(self, chooser):
        rec = chooser.recommend("zzzz qqqq xxww vvkk", "person:00")
        assert rec.platform is None
        assert rec.confidence == 0.0

    def test_best_network(self, chooser, tiny_dataset):
        need = next(q for q in tiny_dataset.queries if q.domain == "sport")
        best = chooser.best_network(need)
        assert best in tuple(Platform)

    def test_best_network_none_for_nonsense(self, chooser):
        assert chooser.best_network("zzzz qqqq xxww vvkk") is None

    def test_work_domain_prefers_linkedin_like_evidence(self, chooser, tiny_dataset):
        """For computer-engineering needs, LinkedIn must carry nonzero
        mass for at least some candidates (career profiles + groups)."""
        need = next(
            q for q in tiny_dataset.queries if q.domain == "computer_engineering"
        )
        li_mass = sum(
            chooser.recommend(need, pid).scores[Platform.LINKEDIN]
            for pid in tiny_dataset.person_ids
        )
        assert li_mass > 0.0
