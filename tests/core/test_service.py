"""Tests for the cached query-serving layer."""

import threading

import pytest

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.core.service import (
    ExpertSearchService,
    normalize_need_text,
    percentile,
)
from repro.socialgraph.graph import SocialGraph
from repro.socialgraph.metamodel import Platform, RelationKind, Resource, UserProfile


@pytest.fixture
def finder(analyzer):
    g = SocialGraph(Platform.TWITTER)
    for pid in ("alice", "bob"):
        g.add_profile(
            UserProfile(profile_id=pid, platform=Platform.TWITTER, display_name=pid)
        )
    g.add_resource(
        Resource(resource_id="t1", platform=Platform.TWITTER,
                 text="freestyle swimming training at the pool", language="en")
    )
    g.add_resource(
        Resource(resource_id="t2", platform=Platform.TWITTER,
                 text="guitar chords and a new rock song", language="en")
    )
    g.link_resource("alice", "t1", RelationKind.CREATES)
    g.link_resource("bob", "t2", RelationKind.CREATES)
    return ExpertFinder.build(
        g, ("alice", "bob"), analyzer, FinderConfig(window=None)
    )


@pytest.fixture
def service(finder):
    return ExpertSearchService(finder)


class TestNormalization:
    def test_collapses_case_and_whitespace(self):
        assert normalize_need_text("  Best\tFreestyle  SWIMMER ") == (
            "best freestyle swimmer"
        )


class TestCaching:
    def test_repeat_query_hits_cache(self, service):
        first = service.find_experts("freestyle swimming")
        second = service.find_experts("freestyle swimming")
        assert first == second
        stats = service.stats
        assert (stats.cache_misses, stats.cache_hits) == (1, 1)

    def test_normalized_variants_share_entry(self, service):
        first = service.find_experts("freestyle swimming")
        second = service.find_experts("  FREESTYLE   Swimming ")
        assert first == second
        assert service.stats.cache_hits == 1
        assert service.cached_results == 1

    def test_parameters_key_the_cache(self, service):
        service.find_experts("freestyle swimming")
        service.find_experts("freestyle swimming", top_k=1)
        service.find_experts("freestyle swimming", alpha=1.0)
        service.find_experts("freestyle swimming", window=5)
        assert service.stats.cache_hits == 0
        assert service.cached_results == 4

    def test_explicit_configured_values_share_entry(self, service, finder):
        # passing the configured α/window explicitly must not fragment
        # the cache into a separate entry per spelling of the same query
        config = finder.config
        service.find_experts("freestyle swimming")
        service.find_experts(
            "freestyle swimming", alpha=config.alpha, window=config.window
        )
        service.find_experts("freestyle swimming", alpha=config.alpha)
        service.find_experts("freestyle swimming", window=config.window)
        assert service.stats.cache_hits == 3
        assert service.cached_results == 1

    def test_window_type_keys_the_cache(self, service):
        # window=1 (top-1 resource) and window=1.0 (fraction of the
        # matches: all of them) hash equal as numbers but rank
        # differently — they must not share a cache entry
        service.find_experts("freestyle swimming training pool", window=1)
        service.find_experts("freestyle swimming training pool", window=1.0)
        assert service.stats.cache_hits == 0
        assert service.cached_results == 2

    def test_cached_result_is_a_copy(self, service):
        first = service.find_experts("freestyle swimming")
        first.append("junk")
        assert service.find_experts("freestyle swimming") != first

    def test_lru_eviction(self, finder):
        service = ExpertSearchService(finder, cache_size=2)
        service.find_experts("freestyle swimming")
        service.find_experts("rock guitar")
        service.find_experts("pasta recipe")  # evicts the oldest entry
        assert service.cached_results == 2
        service.find_experts("freestyle swimming")
        assert service.stats.cache_hits == 0  # evicted → recomputed

    def test_lru_refreshes_on_hit(self, finder):
        service = ExpertSearchService(finder, cache_size=2)
        service.find_experts("freestyle swimming")
        service.find_experts("rock guitar")
        service.find_experts("freestyle swimming")  # refresh: now most recent
        service.find_experts("pasta recipe")  # evicts "rock guitar"
        service.find_experts("freestyle swimming")
        assert service.stats.cache_hits == 2

    def test_zero_cache_size_disables_caching(self, finder):
        service = ExpertSearchService(finder, cache_size=0)
        service.find_experts("freestyle swimming")
        service.find_experts("freestyle swimming")
        stats = service.stats
        assert stats.cache_hits == 0
        assert stats.cache_misses == 2
        assert service.cached_results == 0

    def test_negative_cache_size_rejected(self, finder):
        with pytest.raises(ValueError):
            ExpertSearchService(finder, cache_size=-1)


class TestObserve:
    def test_observe_invalidates_cache(self, service):
        stale = service.find_experts("theremin concert")
        assert stale == []
        assert service.observe(
            "s:new:1", "an amazing theremin concert last night", [("bob", 1)]
        )
        fresh = service.find_experts("theremin concert")
        assert [e.candidate_id for e in fresh] == ["bob"]
        stats = service.stats
        assert stats.cache_misses == 2  # second query recomputed, not served stale
        assert stats.observed == 1
        assert stats.invalidations == 1

    def test_observe_returns_finder_verdict(self, service, finder):
        before = finder.indexed_resources
        assert service.observe("s:new:2", "guitar solo cover", [("bob", 1)])
        assert finder.indexed_resources == before + 1

    def test_non_indexed_observe_keeps_cache(self, service):
        cached = service.find_experts("freestyle swimming")
        indexed = service.observe(
            "it:1",
            "questa e una bella giornata per andare in piscina con gli amici",
            [("alice", 1)],
        )
        assert not indexed
        # the language-cut resource cannot change any cached ranking, so
        # the cache survives and the repeat query is a hit
        assert service.cached_results == 1
        assert service.find_experts("freestyle swimming") == cached
        stats = service.stats
        assert stats.cache_hits == 1
        assert stats.invalidations == 0
        assert stats.cache_survivals == 1

    def test_indexed_observe_still_clears_cache(self, service):
        service.find_experts("freestyle swimming")
        assert service.observe(
            "s:new:3", "freestyle swimming laps again", [("alice", 1)]
        )
        stats = service.stats
        assert stats.invalidations == 1
        assert stats.cache_survivals == 0
        assert service.cached_results == 0


class TestSegmentGauges:
    def test_monolithic_gauges_are_zero(self, service):
        stats = service.stats
        assert (stats.segments, stats.buffered_docs, stats.compactions) == (0, 0, 0)

    def test_segmented_gauges_track_index(self, analyzer):
        g = SocialGraph(Platform.TWITTER)
        for pid in ("alice", "bob"):
            g.add_profile(
                UserProfile(
                    profile_id=pid, platform=Platform.TWITTER, display_name=pid
                )
            )
        g.add_resource(
            Resource(resource_id="t1", platform=Platform.TWITTER,
                     text="freestyle swimming training at the pool", language="en")
        )
        g.link_resource("alice", "t1", RelationKind.CREATES)
        finder = ExpertFinder.build(
            g, ("alice", "bob"), analyzer, FinderConfig(window=None),
            index_mode="segmented", seal_threshold=2,
        )
        service = ExpertSearchService(finder)
        stats = service.stats
        assert stats.segments == 1  # the base segment
        assert stats.buffered_docs == 0

        service.observe("s1", "guitar solo cover tonight", [("bob", 1)])
        assert service.stats.buffered_docs == 1
        # the second observe crosses the seal threshold; synchronous
        # compaction runs but two differently-sized segments don't merge
        service.observe("s2", "another swimming race recap", [("alice", 1)])
        stats = service.stats
        assert stats.buffered_docs == 0
        assert stats.segments == 2
        assert stats.invalidations == 2


class TestBatchAndStats:
    def test_batch_matches_single_queries(self, service, finder):
        needs = ["freestyle swimming", "rock guitar", "freestyle swimming"]
        batched = service.find_experts_batch(needs, top_k=5)
        assert batched == [
            finder.find_experts(need, top_k=5) for need in needs
        ]
        stats = service.stats
        assert stats.queries == 3
        assert stats.cache_hits == 1  # the duplicated need

    def test_latency_counters(self, service):
        assert service.stats.p50_latency == 0.0
        for _ in range(4):
            service.find_experts("freestyle swimming")
        stats = service.stats
        assert stats.p50_latency > 0.0
        assert stats.p95_latency >= stats.p50_latency
        assert service.latency_percentile(100) >= stats.p95_latency

    def test_latency_buffer_bounded(self, finder):
        service = ExpertSearchService(finder, max_latency_samples=8)
        for _ in range(50):
            service.find_experts("freestyle swimming")
        assert len(service._latencies) <= 8
        assert service.stats.queries == 50

    def test_hit_rate_empty(self, service):
        assert service.stats.hit_rate == 0.0


class TestShardedBatch:
    """Batches over a sharded finder with a live scatter pool must
    match the serial service exactly — results and counters — while
    reporting the achieved pipeline depth."""

    @pytest.fixture
    def sharded_pair(self, analyzer):
        from repro.synthetic.stream import (
            stream_candidates,
            stream_queries,
            stream_resources,
        )

        cands = stream_candidates(6)

        def build(shards=None):
            return ExpertFinder.from_stream(
                cands,
                stream_resources(cands, 60, seed=31),
                analyzer,
                FinderConfig(window=None),
                shards=shards,
            )

        return build(3), build(), stream_queries(6, seed=31)

    def test_batch_routes_through_pool(self, sharded_pair):
        sharded, plain, queries = sharded_pair
        sharded.engine = "columnar"
        sharded.start_scatter_pool()
        try:
            pooled = ExpertSearchService(sharded, cache_size=16)
            serial = ExpertSearchService(plain, cache_size=16)
            batch = list(queries) + [queries[0]]  # one in-batch duplicate
            assert pooled.find_experts_batch(batch, top_k=5) == (
                serial.find_experts_batch(batch, top_k=5)
            )
            p_stats, s_stats = pooled.stats, serial.stats
            assert p_stats.queries == s_stats.queries == len(batch)
            assert p_stats.cache_hits == s_stats.cache_hits == 1
            assert p_stats.cache_misses == s_stats.cache_misses == len(queries)
            assert p_stats.batch_parallelism > 1.0
            assert s_stats.batch_parallelism == 0.0
            # second pass: all hits, the gauge keeps its value
            pooled.find_experts_batch(batch, top_k=5)
            assert pooled.stats.cache_hits == 1 + len(batch)
            assert pooled.stats.batch_parallelism == p_stats.batch_parallelism
        finally:
            sharded.close_scatter_pool()

    def test_uncached_batch_counts_duplicates_as_misses(self, sharded_pair):
        sharded, _plain, queries = sharded_pair
        sharded.engine = "columnar"
        sharded.start_scatter_pool()
        try:
            service = ExpertSearchService(sharded, cache_size=0)
            batch = [queries[0], queries[1], queries[0]]
            service.find_experts_batch(batch)
            stats = service.stats
            # with no cache the serial loop recomputes the duplicate
            assert stats.cache_hits == 0
            assert stats.cache_misses == 3
            assert service.cached_results == 0
        finally:
            sharded.close_scatter_pool()

    def test_batch_without_pool_stays_serial(self, sharded_pair):
        sharded, _plain, queries = sharded_pair
        sharded.engine = "columnar"
        service = ExpertSearchService(sharded)
        service.find_experts_batch(queries)
        assert service.stats.batch_parallelism == 0.0


class TestPercentile:
    def test_empty_sample_is_zero(self):
        assert percentile([], 50) == 0.0
        assert percentile([], 95) == 0.0

    @pytest.mark.parametrize("pct", [-0.1, 100.1, 200])
    def test_out_of_range_raises_even_on_empty(self, pct):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([], pct)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0, 2.0], pct)

    def test_nearest_rank(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        assert percentile(sample, 0) == 1.0
        assert percentile(sample, 50) == 2.0
        assert percentile(sample, 75) == 3.0
        assert percentile(sample, 76) == 4.0
        assert percentile(sample, 100) == 4.0

    def test_singleton(self):
        assert percentile([7.0], 1) == 7.0
        assert percentile([7.0], 99) == 7.0


class TestStatsEdgeCases:
    def test_all_gauges_defined_before_first_request(self, service):
        stats = service.stats
        assert stats.queries == 0
        assert stats.hit_rate == 0.0
        assert stats.block_skip_rate == 0.0
        assert stats.p50_latency == 0.0
        assert stats.p95_latency == 0.0
        assert stats.batch_parallelism == 0.0

    def test_latency_percentile_empty_and_bounds(self, service):
        assert service.latency_percentile(95) == 0.0
        with pytest.raises(ValueError):
            service.latency_percentile(101)
        service.find_experts("freestyle swimming")
        assert service.latency_percentile(95) > 0.0

    def test_to_dict_mirrors_stats(self, service):
        service.find_experts("freestyle swimming")
        service.find_experts("freestyle swimming")
        stats = service.stats
        as_dict = stats.to_dict()
        assert as_dict["queries"] == stats.queries == 2
        assert as_dict["cache_hits"] == stats.cache_hits == 1
        assert as_dict["hit_rate"] == stats.hit_rate == 0.5
        assert as_dict["p50_latency_s"] == stats.p50_latency
        assert as_dict["p95_latency_s"] == stats.p95_latency
        assert as_dict["block_skip_rate"] == stats.block_skip_rate

    def test_to_dict_is_json_ready(self, service):
        import json

        service.find_experts("freestyle swimming")
        parsed = json.loads(json.dumps(service.stats.to_dict()))
        assert parsed["queries"] == 1


class TestThreadSafety:
    """The service is shared by gateway executor threads: concurrent
    queries and observes must never corrupt the cache, the counters, or
    the engines' shared scratch buffers."""

    def test_concurrent_queries_and_observes(self, finder):
        finder.engine = "columnar"
        service = ExpertSearchService(finder, cache_size=8)
        needs = [
            "freestyle swimming",
            "rock guitar",
            "pasta recipe",
            "theremin concert",
        ]
        errors: list[Exception] = []
        barrier = threading.Barrier(len(needs) + 1)

        def query_worker(need: str) -> None:
            try:
                barrier.wait(10.0)
                for _ in range(25):
                    experts = service.find_experts(need)
                    ids = [e.candidate_id for e in experts]
                    assert len(ids) == len(set(ids))
                    assert all(
                        e.supporting_resources >= 1 for e in experts
                    )
            except Exception as exc:  # surfaced below
                errors.append(exc)

        def observe_worker() -> None:
            try:
                barrier.wait(10.0)
                for i in range(10):
                    service.observe(
                        f"obs:{i}",
                        "another swimming race recap",
                        [("alice", 1)],
                    )
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=query_worker, args=(need,))
            for need in needs
        ]
        threads.append(threading.Thread(target=observe_worker))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        assert errors == []
        stats = service.stats
        assert stats.queries == 100
        assert stats.observed == 10
        assert stats.cache_hits + stats.cache_misses == 100
        assert len(service._latencies) == stats.queries

    def test_concurrent_batches_share_the_cache(self, finder):
        finder.engine = "columnar"
        service = ExpertSearchService(finder, cache_size=32)
        needs = ["freestyle swimming", "rock guitar"]
        errors: list[Exception] = []

        def batch_worker() -> None:
            try:
                for _ in range(10):
                    results = service.find_experts_batch(needs)
                    assert len(results) == len(needs)
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=batch_worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        assert errors == []
        stats = service.stats
        assert stats.queries == 80
        # only the first computation of each need can miss
        assert stats.cache_misses == len(needs)
        assert stats.cache_hits == 80 - len(needs)
