"""Unit tests for Eq.-3 scoring helpers."""

import pytest

from repro.core.scoring import (
    aggregate_expert_scores,
    apply_window,
    distance_weight,
    window_size,
)
from repro.index.vsm import ResourceMatch


def _match(doc_id: str, score: float) -> ResourceMatch:
    return ResourceMatch(doc_id=doc_id, score=score, term_score=score, entity_score=0.0)


class TestDistanceWeight:
    def test_paper_setting(self):
        assert [distance_weight(d, 2) for d in (0, 1, 2)] == [1.0, 0.75, 0.5]

    def test_max_distance_one(self):
        assert distance_weight(0, 1) == 1.0
        assert distance_weight(1, 1) == 0.5

    def test_max_distance_zero(self):
        assert distance_weight(0, 0) == 1.0

    def test_custom_interval(self):
        assert distance_weight(2, 2, (0.1, 1.0)) == pytest.approx(0.1)

    def test_constant_interval(self):
        assert distance_weight(1, 2, (1.0, 1.0)) == 1.0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            distance_weight(3, 2)
        with pytest.raises(ValueError):
            distance_weight(-1, 2)


class TestWindowSize:
    def test_absolute(self):
        assert window_size(100, 5000) == 100

    def test_absolute_capped(self):
        assert window_size(100, 30) == 30

    def test_fraction(self):
        assert window_size(0.1, 5000) == 500

    def test_fraction_rounds_up(self):
        assert window_size(0.01, 150) == 2

    def test_fraction_at_least_one(self):
        assert window_size(0.01, 5) == 1

    def test_none_means_all(self):
        assert window_size(None, 42) == 42

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            window_size(10, -1)

    def test_bool_rejected(self):
        # bool is an int subclass; window=True used to silently mean 1
        with pytest.raises(ValueError):
            window_size(True, 100)
        with pytest.raises(ValueError):
            window_size(False, 100)

    def test_fraction_above_one_rejected(self):
        # window=2.0 used to silently mean "all matches"
        with pytest.raises(ValueError):
            window_size(2.0, 100)

    def test_zero_fraction_rejected(self):
        with pytest.raises(ValueError):
            window_size(0.0, 100)

    def test_non_positive_int_rejected(self):
        with pytest.raises(ValueError):
            window_size(-5, 100)
        with pytest.raises(ValueError):
            window_size(0, 100)

    def test_fraction_of_one_keeps_all(self):
        assert window_size(1.0, 42) == 42


class TestApplyWindow:
    def test_keeps_top(self):
        matches = [_match(f"d{i}", 10.0 - i) for i in range(10)]
        kept = apply_window(matches, 3)
        assert [m.doc_id for m in kept] == ["d0", "d1", "d2"]

    def test_none_keeps_all(self):
        matches = [_match("a", 1.0)]
        assert len(apply_window(matches, None)) == 1


class TestAggregate:
    def test_eq3_single_candidate(self):
        matches = [_match("r1", 2.0), _match("r2", 1.0)]
        evidence = {"r1": [("alice", 1)], "r2": [("alice", 2)]}
        scores = aggregate_expert_scores(matches, evidence, max_distance=2)
        assert scores["alice"] == pytest.approx(2.0 * 0.75 + 1.0 * 0.5)

    def test_shared_resource_credits_all(self):
        matches = [_match("r1", 4.0)]
        evidence = {"r1": [("alice", 1), ("bob", 2)]}
        scores = aggregate_expert_scores(matches, evidence, max_distance=2)
        assert scores["alice"] == pytest.approx(3.0)
        assert scores["bob"] == pytest.approx(2.0)

    def test_unmatched_resource_ignored(self):
        matches = [_match("ghost", 1.0)]
        scores = aggregate_expert_scores(matches, {}, max_distance=2)
        assert scores == {}

    def test_custom_interval(self):
        matches = [_match("r1", 1.0)]
        evidence = {"r1": [("alice", 2)]}
        scores = aggregate_expert_scores(
            matches, evidence, max_distance=2, weight_interval=(1.0, 1.0)
        )
        assert scores["alice"] == pytest.approx(1.0)
