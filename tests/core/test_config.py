"""Unit tests for FinderConfig."""

import pytest

from repro.core.config import PAPER_CONFIG, FinderConfig


class TestDefaults:
    def test_paper_setting(self):
        config = FinderConfig()
        assert config.alpha == 0.6
        assert config.window == 100
        assert config.max_distance == 2
        assert config.weight_interval == (0.5, 1.0)
        assert not config.include_friends
        assert config.idf_exponent == 2.0
        assert not config.normalize

    def test_paper_config_constant(self):
        assert PAPER_CONFIG == FinderConfig()


class TestValidation:
    @pytest.mark.parametrize("alpha", [-0.1, 1.1])
    def test_alpha_bounds(self, alpha):
        with pytest.raises(ValueError):
            FinderConfig(alpha=alpha)

    @pytest.mark.parametrize("distance", [-1, 3])
    def test_distance_bounds(self, distance):
        with pytest.raises(ValueError):
            FinderConfig(max_distance=distance)

    def test_integer_window_positive(self):
        with pytest.raises(ValueError):
            FinderConfig(window=0)

    @pytest.mark.parametrize("window", [0.0, 1.5])
    def test_fraction_window_bounds(self, window):
        with pytest.raises(ValueError):
            FinderConfig(window=window)

    def test_window_none_allowed(self):
        assert FinderConfig(window=None).window is None

    def test_window_bool_rejected(self):
        with pytest.raises(ValueError):
            FinderConfig(window=True)

    def test_weight_interval_order(self):
        with pytest.raises(ValueError):
            FinderConfig(weight_interval=(1.0, 0.5))

    def test_idf_exponent_positive(self):
        with pytest.raises(ValueError):
            FinderConfig(idf_exponent=0.0)


class TestWith:
    def test_with_changes(self):
        config = FinderConfig().with_(alpha=0.3, max_distance=1)
        assert config.alpha == 0.3
        assert config.max_distance == 1
        assert config.window == 100  # untouched

    def test_with_validates(self):
        with pytest.raises(ValueError):
            FinderConfig().with_(alpha=5.0)

    def test_original_unchanged(self):
        base = FinderConfig()
        base.with_(alpha=0.1)
        assert base.alpha == 0.6
