"""Tests for streaming (incremental) resource ingestion."""

import pytest

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.socialgraph.graph import SocialGraph
from repro.socialgraph.metamodel import Platform, RelationKind, Resource, UserProfile


@pytest.fixture
def finder(analyzer):
    g = SocialGraph(Platform.TWITTER)
    for pid in ("alice", "bob"):
        g.add_profile(
            UserProfile(profile_id=pid, platform=Platform.TWITTER, display_name=pid)
        )
    g.add_resource(
        Resource(resource_id="t1", platform=Platform.TWITTER,
                 text="guitar chords and a new rock song", language="en")
    )
    g.link_resource("alice", "t1", RelationKind.CREATES)
    return ExpertFinder.build(
        g, ("alice", "bob"), analyzer, FinderConfig(window=None)
    )


class TestObserve:
    def test_new_resource_changes_ranking(self, finder):
        assert finder.find_experts("freestyle swimming") == []
        indexed = finder.observe(
            "t2",
            "just finished freestyle swimming training at the pool",
            [("bob", 1)],
            language="en",
        )
        assert indexed
        ranked = finder.find_experts("freestyle swimming")
        assert [e.candidate_id for e in ranked] == ["bob"]

    def test_statistics_updated(self, finder):
        before = finder.indexed_resources
        n_before = finder._retriever.statistics.resource_count
        finder.observe("t2", "a brand new post about the gold medal race",
                       [("alice", 1)], language="en")
        assert finder.indexed_resources == before + 1
        assert finder._retriever.statistics.resource_count == n_before + 1

    def test_irf_reflects_new_document(self, finder):
        stats = finder._retriever.statistics
        irf_before = stats.irf("guitar")
        finder.observe("t2", "more guitar practice with the band tonight",
                       [("alice", 1)], language="en")
        # "guitar" now appears in 2 of 3 docs → its irf must drop
        assert stats.irf("guitar") < irf_before

    def test_evidence_count_updated(self, finder):
        before = finder.evidence_count("bob")
        finder.observe("t2", "swimming laps", [("bob", 1)], language="en")
        assert finder.evidence_count("bob") == before + 1

    def test_multi_supporter(self, finder):
        finder.observe(
            "shared", "a freestyle swimming discussion in the group",
            [("alice", 2), ("bob", 2)], language="en",
        )
        ranked = finder.find_experts("freestyle swimming")
        assert {e.candidate_id for e in ranked} == {"alice", "bob"}

    def test_non_english_not_indexed_but_counted(self, finder):
        indexed = finder.observe(
            "it1",
            "questa e una bella giornata per andare in piscina con gli amici",
            [("alice", 1)],
        )
        assert not indexed
        assert finder.evidence_count("alice") == 3  # profile + t1 + it1

    def test_duplicate_rejected(self, finder):
        finder.observe("t2", "hello hello", [("alice", 1)], language="en")
        with pytest.raises(ValueError):
            finder.observe("t2", "again", [("alice", 1)], language="en")

    def test_unknown_candidate_rejected(self, finder):
        with pytest.raises(KeyError):
            finder.observe("t9", "text", [("ghost", 1)], language="en")

    def test_invalid_distance_rejected(self, finder):
        with pytest.raises(ValueError):
            finder.observe("t9", "text", [("alice", 7)], language="en")

    def test_empty_supporters_rejected(self, finder):
        with pytest.raises(ValueError):
            finder.observe("t9", "text", [], language="en")


def _both_engines(finder, need, **kwargs):
    """The ranking from both engines, asserting they agree exactly."""
    previous = finder.engine
    finder.engine = "object"
    reference = finder.find_experts(need, **kwargs)
    finder.engine = "columnar"
    columnar = finder.find_experts(need, **kwargs)
    finder.engine = previous
    assert columnar == reference
    return reference


class TestStreamingEngineEquivalence:
    """Interleaved observe() + queries: the recompiled columnar engine
    must track the object path exactly (satellite of the columnar
    engine; the window/α sweeps live in tests/index/test_columnar.py)."""

    def test_observe_invalidates_compiled_engine(self, finder):
        engine = finder.query_engine()
        assert finder.query_engine() is engine  # cached until observe
        finder.observe("t2", "swimming laps", [("bob", 1)], language="en")
        recompiled = finder.query_engine()
        assert recompiled is not engine
        assert recompiled.document_count == engine.document_count + 1

    def test_interleaved_observe_and_query(self, finder):
        need = "freestyle swimming"
        assert _both_engines(finder, need) == []
        finder.observe(
            "t2",
            "just finished freestyle swimming training at the pool",
            [("bob", 1)],
            language="en",
        )
        ranked = _both_engines(finder, need)
        assert [e.candidate_id for e in ranked] == ["bob"]
        finder.observe(
            "t3",
            "freestyle swimming tips for the next open water race",
            [("alice", 2), ("bob", 2)],
            language="en",
        )
        ranked = _both_engines(finder, need)
        assert {e.candidate_id for e in ranked} == {"alice", "bob"}
        # overridden parameters agree too, after the same stream
        _both_engines(finder, need, alpha=1.0, window=1)
        _both_engines(finder, need, alpha=0.0, window=None)
        _both_engines(finder, need, top_k=1)

    def test_non_english_observe_keeps_engines_aligned(self, finder):
        # the resource is counted as evidence but not indexed; the
        # compiled engine must not resurrect it as a matchable doc
        indexed = finder.observe(
            "it1",
            "questa e una bella giornata per andare in piscina con gli amici",
            [("alice", 1)],
        )
        assert not indexed
        assert finder.query_engine().document_count == finder.indexed_resources
        _both_engines(finder, "guitar rock song")
        _both_engines(finder, "piscina")
