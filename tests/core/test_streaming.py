"""Tests for streaming (incremental) resource ingestion."""

import random

import pytest

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.socialgraph.graph import SocialGraph
from repro.socialgraph.metamodel import (
    Platform,
    RelationKind,
    Resource,
    SocialRelation,
    UserProfile,
)


@pytest.fixture
def finder(analyzer):
    g = SocialGraph(Platform.TWITTER)
    for pid in ("alice", "bob"):
        g.add_profile(
            UserProfile(profile_id=pid, platform=Platform.TWITTER, display_name=pid)
        )
    g.add_resource(
        Resource(resource_id="t1", platform=Platform.TWITTER,
                 text="guitar chords and a new rock song", language="en")
    )
    g.link_resource("alice", "t1", RelationKind.CREATES)
    return ExpertFinder.build(
        g, ("alice", "bob"), analyzer, FinderConfig(window=None)
    )


class TestObserve:
    def test_new_resource_changes_ranking(self, finder):
        assert finder.find_experts("freestyle swimming") == []
        indexed = finder.observe(
            "t2",
            "just finished freestyle swimming training at the pool",
            [("bob", 1)],
            language="en",
        )
        assert indexed
        ranked = finder.find_experts("freestyle swimming")
        assert [e.candidate_id for e in ranked] == ["bob"]

    def test_statistics_updated(self, finder):
        before = finder.indexed_resources
        n_before = finder._retriever.statistics.resource_count
        finder.observe("t2", "a brand new post about the gold medal race",
                       [("alice", 1)], language="en")
        assert finder.indexed_resources == before + 1
        assert finder._retriever.statistics.resource_count == n_before + 1

    def test_irf_reflects_new_document(self, finder):
        stats = finder._retriever.statistics
        irf_before = stats.irf("guitar")
        finder.observe("t2", "more guitar practice with the band tonight",
                       [("alice", 1)], language="en")
        # "guitar" now appears in 2 of 3 docs → its irf must drop
        assert stats.irf("guitar") < irf_before

    def test_evidence_count_updated(self, finder):
        before = finder.evidence_count("bob")
        finder.observe("t2", "swimming laps", [("bob", 1)], language="en")
        assert finder.evidence_count("bob") == before + 1

    def test_multi_supporter(self, finder):
        finder.observe(
            "shared", "a freestyle swimming discussion in the group",
            [("alice", 2), ("bob", 2)], language="en",
        )
        ranked = finder.find_experts("freestyle swimming")
        assert {e.candidate_id for e in ranked} == {"alice", "bob"}

    def test_non_english_not_indexed_but_counted(self, finder):
        indexed = finder.observe(
            "it1",
            "questa e una bella giornata per andare in piscina con gli amici",
            [("alice", 1)],
        )
        assert not indexed
        assert finder.evidence_count("alice") == 3  # profile + t1 + it1

    def test_duplicate_rejected(self, finder):
        finder.observe("t2", "hello hello", [("alice", 1)], language="en")
        with pytest.raises(ValueError):
            finder.observe("t2", "again", [("alice", 1)], language="en")

    def test_unknown_candidate_rejected(self, finder):
        with pytest.raises(KeyError):
            finder.observe("t9", "text", [("ghost", 1)], language="en")

    def test_invalid_distance_rejected(self, finder):
        with pytest.raises(ValueError):
            finder.observe("t9", "text", [("alice", 7)], language="en")

    def test_empty_supporters_rejected(self, finder):
        with pytest.raises(ValueError):
            finder.observe("t9", "text", [], language="en")


def _both_engines(finder, need, **kwargs):
    """The ranking from all three engines, asserting exact agreement."""
    previous = finder.engine
    finder.engine = "object"
    reference = finder.find_experts(need, **kwargs)
    finder.engine = "columnar"
    columnar = finder.find_experts(need, **kwargs)
    finder.engine = "columnar-pruned"
    pruned = finder.find_experts(need, **kwargs)
    finder.engine = previous
    assert columnar == reference
    assert pruned == reference
    return reference


class TestStreamingEngineEquivalence:
    """Interleaved observe() + queries: the recompiled columnar engine
    must track the object path exactly (satellite of the columnar
    engine; the window/α sweeps live in tests/index/test_columnar.py)."""

    def test_observe_invalidates_compiled_engine(self, finder):
        engine = finder.query_engine()
        assert finder.query_engine() is engine  # cached until observe
        finder.observe("t2", "swimming laps", [("bob", 1)], language="en")
        recompiled = finder.query_engine()
        assert recompiled is not engine
        assert recompiled.document_count == engine.document_count + 1

    def test_interleaved_observe_and_query(self, finder):
        need = "freestyle swimming"
        assert _both_engines(finder, need) == []
        finder.observe(
            "t2",
            "just finished freestyle swimming training at the pool",
            [("bob", 1)],
            language="en",
        )
        ranked = _both_engines(finder, need)
        assert [e.candidate_id for e in ranked] == ["bob"]
        finder.observe(
            "t3",
            "freestyle swimming tips for the next open water race",
            [("alice", 2), ("bob", 2)],
            language="en",
        )
        ranked = _both_engines(finder, need)
        assert {e.candidate_id for e in ranked} == {"alice", "bob"}
        # overridden parameters agree too, after the same stream
        _both_engines(finder, need, alpha=1.0, window=1)
        _both_engines(finder, need, alpha=0.0, window=None)
        _both_engines(finder, need, top_k=1)

    def test_non_english_observe_keeps_engines_aligned(self, finder):
        # the resource is counted as evidence but not indexed; the
        # compiled engine must not resurrect it as a matchable doc
        indexed = finder.observe(
            "it1",
            "questa e una bella giornata per andare in piscina con gli amici",
            [("alice", 1)],
        )
        assert not indexed
        assert finder.query_engine().document_count == finder.indexed_resources
        _both_engines(finder, "guitar rock song")
        _both_engines(finder, "piscina")


# -- segmented streaming ------------------------------------------------------

_CANDIDATES = ("alice", "bob", "cara")

#: the streamed tail: (resource id, text, creator profiles for the cold
#: rebuild, supporters for observe()). Creators and supporters describe
#: the same graph state — "s3" is created by followed non-candidate
#: "dave", which the gatherer reaches from alice at distance 2; "s2" has
#: two creators, listed in candidate-seed order like the shared-frontier
#: gather emits them. "s4" is Italian and auto-detects as non-indexed on
#: both paths (languages are auto-detected symmetrically: the cold build
#: analyzes every node with language=None, so observe() does too).
_EVENTS = [
    ("s1", "more freestyle swimming drills before the next race",
     ("bob",), (("bob", 1),)),
    ("s2", "a shared guitar practice session down by the swimming pool",
     ("alice", "bob"), (("alice", 1), ("bob", 1))),
    ("s3", "open water swimming race report with detailed timing splits",
     ("dave",), (("alice", 2),)),
    ("s4", "questa e una bella giornata per andare in piscina con gli amici",
     ("cara",), (("cara", 1),)),
    ("s5", "rock guitar chords for a brand new song",
     ("cara",), (("cara", 1),)),
]

_NEEDS = (
    "freestyle swimming race",
    "rock guitar song",
    "piscina",
    "swimming pool practice",
)


def _stream_graph(events=()):
    """The base social graph plus the resources of *events*."""
    g = SocialGraph(Platform.TWITTER)
    for pid in (*_CANDIDATES, "dave"):
        g.add_profile(
            UserProfile(profile_id=pid, platform=Platform.TWITTER, display_name=pid)
        )
    g.add_social_relation(
        SocialRelation(source="alice", target="dave", kind=RelationKind.FOLLOWS)
    )
    g.add_resource(
        Resource(resource_id="t1", platform=Platform.TWITTER,
                 text="guitar chords and a new rock song")
    )
    g.link_resource("alice", "t1", RelationKind.CREATES)
    for rid, text, creators, _supporters in events:
        g.add_resource(
            Resource(resource_id=rid, platform=Platform.TWITTER, text=text)
        )
        for pid in creators:
            g.link_resource(pid, rid, RelationKind.CREATES)
    return g


class TestSegmentedStreamingEquivalence:
    """The tentpole property: a segmented finder fed an interleaved
    observe()/find_experts() stream ranks byte-identically to (a) a
    monolithic finder fed the same stream and (b) a monolithic COLD
    REBUILD over a graph containing the same resources — on both
    engines, at every intermediate state."""

    def test_interleaved_stream_matches_cold_rebuild(self, analyzer):
        config = FinderConfig(window=None)
        segmented = ExpertFinder.build(
            _stream_graph(), _CANDIDATES, analyzer, config,
            index_mode="segmented", seal_threshold=2,
        )
        monolithic = ExpertFinder.build(
            _stream_graph(), _CANDIDATES, analyzer, config
        )
        for step, (rid, text, _creators, supporters) in enumerate(_EVENTS, 1):
            seg_indexed = segmented.observe(rid, text, supporters)
            mono_indexed = monolithic.observe(rid, text, supporters)
            assert seg_indexed == mono_indexed
            rebuilt = ExpertFinder.build(
                _stream_graph(_EVENTS[:step]), _CANDIDATES, analyzer, config
            )
            for need in _NEEDS:
                expected = _both_engines(rebuilt, need)
                assert _both_engines(monolithic, need) == expected
                assert _both_engines(segmented, need) == expected
        # the stream crossed the seal threshold and indexed the Italian
        # resource as evidence only
        stats = segmented.index_stats
        assert stats.seals >= 1
        assert rebuilt.index_stats is None  # cold rebuilds stay monolithic
        assert segmented.indexed_resources == monolithic.indexed_resources
        # parameter overrides agree after the full stream too
        for alpha, window in ((0.0, None), (1.0, 3), (0.5, 0.5)):
            for need in _NEEDS:
                assert segmented.find_experts(
                    need, alpha=alpha, window=window
                ) == monolithic.find_experts(need, alpha=alpha, window=window)

    def test_match_resources_parity(self, analyzer):
        config = FinderConfig(window=None)
        segmented = ExpertFinder.build(
            _stream_graph(), _CANDIDATES, analyzer, config,
            index_mode="segmented", seal_threshold=2,
        )
        monolithic = ExpertFinder.build(
            _stream_graph(), _CANDIDATES, analyzer, config
        )
        for rid, text, _creators, supporters in _EVENTS:
            segmented.observe(rid, text, supporters)
            monolithic.observe(rid, text, supporters)
        for need in _NEEDS:
            full = monolithic.match_resources(need)
            assert segmented.match_resources(need) == full
            for k in (1, 3, len(full) + 5):
                assert segmented.match_resources(need, limit=k) == full[:k]

    def test_compaction_preserves_stream_rankings(self, analyzer):
        config = FinderConfig(window=None)
        segmented = ExpertFinder.build(
            _stream_graph(), _CANDIDATES, analyzer, config,
            index_mode="segmented", seal_threshold=1, compaction="manual",
        )
        for rid, text, _creators, supporters in _EVENTS:
            segmented.observe(rid, text, supporters)
        before = [_both_engines(segmented, need) for need in _NEEDS]
        assert segmented.segmented_index.compact(full=True) == 1
        assert segmented.index_stats.segments == 1
        assert [_both_engines(segmented, need) for need in _NEEDS] == before


class TestRandomizedPrunedStream:
    """Satellite of the block-max pruned mode: a seeded random
    interleaved observe/query stream over a segmented finder, asserting
    the pruned ranking equals a monolithic cold rebuild at every step
    (with absolute windows small enough that pruning actually skips)."""

    _WORDS = (
        "swimming", "freestyle", "guitar", "rock", "song", "pool",
        "race", "chords", "practice", "training", "medal", "timing",
        "open", "water", "band", "report", "session", "splits",
    )

    def test_random_stream_pruned_matches_cold_rebuild(self, analyzer):
        rng = random.Random(1307)
        config = FinderConfig(window=None)
        segmented = ExpertFinder.build(
            _stream_graph(), _CANDIDATES, analyzer, config,
            index_mode="segmented", seal_threshold=3,
        )
        events = []
        for step in range(18):
            rid = f"r{step}"
            text = " ".join(rng.choices(self._WORDS, k=rng.randint(4, 9)))
            # creator links in the rebuilt graph put candidates at
            # distance 1, so the streamed supporters must say the same
            supporters = [
                (pid, 1)
                for pid in rng.sample(_CANDIDATES, rng.randint(1, 3))
            ]
            events.append((rid, text, supporters))
            segmented.observe(rid, text, supporters)
            graph = _stream_graph()
            for erid, etext, esupporters in events:
                graph.add_resource(Resource(
                    resource_id=erid, platform=Platform.TWITTER, text=etext
                ))
                for pid, _ in esupporters:
                    graph.link_resource(pid, erid, RelationKind.CREATES)
            rebuilt = ExpertFinder.build(graph, _CANDIDATES, analyzer, config)
            need = " ".join(rng.choices(self._WORDS, k=2))
            window = rng.choice((1, 2, 5, None, 0.5))
            expected = rebuilt.find_experts(need, window=window)
            segmented.engine = "columnar-pruned"
            assert segmented.find_experts(need, window=window) == expected
            segmented.engine = "object"
            assert segmented.find_experts(need, window=window) == expected
        stats = segmented.pruning_stats
        assert stats.pruned_queries > 0  # absolute windows took the pruned path
        assert stats.fallback_queries > 0  # None/fractional fell back
        assert stats.blocks_skipped > 0  # and skipping actually happened
        assert segmented.index_stats.seals >= 1


class TestSegmentedFinderSurface:
    def test_observe_does_not_recompile_anything(self, analyzer):
        # the acceptance criterion: after one observe the next query must
        # not rebuild whole-collection compiled state — a segmented
        # finder has none to rebuild (queries run over segments+buffer)
        finder = ExpertFinder.build(
            _stream_graph(), _CANDIDATES, analyzer, FinderConfig(window=None),
            index_mode="segmented",
        )
        assert finder.index_mode == "segmented"
        assert finder._engine is None
        finder.observe("s1", "more freestyle swimming drills", [("bob", 1)])
        assert finder.index_stats.buffered == 1
        assert finder.find_experts("freestyle swimming") != []
        assert finder._engine is None  # still nothing compiled
        with pytest.raises(RuntimeError, match="whole-collection"):
            finder.query_engine()
        with pytest.raises(RuntimeError, match="monolithic"):
            finder.retriever

    def test_monolithic_engine_survives_non_indexed_observe(self, finder):
        engine = finder.query_engine()
        indexed = finder.observe(
            "it1",
            "questa e una bella giornata per andare in piscina con gli amici",
            [("alice", 1)],
        )
        assert not indexed
        assert finder.query_engine() is engine  # no recompile needed

    def test_index_stats_surface(self, analyzer, finder):
        assert finder.index_stats is None  # monolithic
        segmented = ExpertFinder.build(
            _stream_graph(), _CANDIDATES, analyzer, FinderConfig(window=None),
            index_mode="segmented",
        )
        stats = segmented.index_stats
        assert stats.segments == 1  # the base segment
        assert stats.buffered == 0
        assert stats.documents == segmented.indexed_resources

    def test_build_rejects_unknown_index_mode(self, analyzer):
        with pytest.raises(ValueError, match="index_mode"):
            ExpertFinder.build(
                _stream_graph(), _CANDIDATES, analyzer, FinderConfig(),
                index_mode="sharded",
            )
