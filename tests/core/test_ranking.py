"""Unit tests for the expert ranker."""

import pytest

from repro.core.config import FinderConfig
from repro.core.ranking import ExpertRanker, ExpertScore
from repro.index.vsm import ResourceMatch


def _match(doc_id: str, score: float) -> ResourceMatch:
    return ResourceMatch(doc_id=doc_id, score=score, term_score=score, entity_score=0.0)


EVIDENCE = {
    "r1": [("alice", 0)],
    "r2": [("alice", 1), ("bob", 1)],
    "r3": [("bob", 2)],
    "r4": [("carol", 2)],
}


class TestRank:
    def test_orders_by_score(self):
        ranker = ExpertRanker(EVIDENCE, FinderConfig(window=None))
        matches = [_match("r1", 5.0), _match("r2", 3.0), _match("r3", 1.0)]
        ranked = ranker.rank(matches)
        assert [e.candidate_id for e in ranked] == ["alice", "bob"]
        assert ranked[0].score == pytest.approx(5.0 * 1.0 + 3.0 * 0.75)
        assert ranked[1].score == pytest.approx(3.0 * 0.75 + 1.0 * 0.5)

    def test_window_cuts_tail(self):
        ranker = ExpertRanker(EVIDENCE, FinderConfig(window=1))
        matches = [_match("r1", 5.0), _match("r4", 4.0)]
        ranked = ranker.rank(matches)
        # only r1 inside the window → carol never appears
        assert [e.candidate_id for e in ranked] == ["alice"]

    def test_supporting_resource_counts(self):
        ranker = ExpertRanker(EVIDENCE, FinderConfig(window=None))
        ranked = ranker.rank([_match("r2", 1.0), _match("r3", 1.0)])
        by_id = {e.candidate_id: e for e in ranked}
        assert by_id["bob"].supporting_resources == 2
        assert by_id["alice"].supporting_resources == 1

    def test_deterministic_tie_break_by_id(self):
        ranker = ExpertRanker({"r": [("zed", 1), ("amy", 1)]}, FinderConfig(window=None))
        ranked = ranker.rank([_match("r", 1.0)])
        assert [e.candidate_id for e in ranked] == ["amy", "zed"]

    def test_empty_matches(self):
        ranker = ExpertRanker(EVIDENCE, FinderConfig())
        assert ranker.rank([]) == []

    def test_normalized_variant(self):
        config = FinderConfig(window=None, normalize=True)
        ranker = ExpertRanker(EVIDENCE, config)
        ranked = ranker.rank([_match("r2", 4.0), _match("r3", 2.0)])
        by_id = {e.candidate_id: e for e in ranked}
        # bob: (4*0.75 + 2*0.5)/2 ; alice: (4*0.75)/1
        assert by_id["bob"].score == pytest.approx(2.0)
        assert by_id["alice"].score == pytest.approx(3.0)

    def test_expert_score_requires_positive(self):
        with pytest.raises(ValueError):
            ExpertScore(candidate_id="x", score=0.0, supporting_resources=1)
