"""Reproducibility: the same (scale, seed) must yield bit-identical
datasets, rankings, and metrics (DESIGN.md Sec. 5, decision 6)."""

from __future__ import annotations

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.synthetic.dataset import DatasetScale, build_dataset


class TestDatasetDeterminism:
    def test_same_seed_same_graph(self, tiny_dataset):
        rebuilt = build_dataset(DatasetScale.TINY, seed=7)
        a, b = tiny_dataset.merged_graph, rebuilt.merged_graph
        assert a.counts() == b.counts()
        assert {r.resource_id for r in a.resources()} == {
            r.resource_id for r in b.resources()
        }
        for resource in a.resources():
            assert resource == b.resource(resource.resource_id)

    def test_same_seed_same_corpus(self, tiny_dataset):
        rebuilt = build_dataset(DatasetScale.TINY, seed=7)
        assert set(tiny_dataset.corpus) == set(rebuilt.corpus)
        for node_id, analysis in tiny_dataset.corpus.items():
            other = rebuilt.corpus[node_id]
            assert analysis.term_counts == other.term_counts
            assert analysis.entity_counts == other.entity_counts
            assert analysis.language == other.language

    def test_same_seed_same_ground_truth(self, tiny_dataset):
        rebuilt = build_dataset(DatasetScale.TINY, seed=7)
        for domain in ("sport", "music", "science"):
            assert tiny_dataset.ground_truth.experts(
                domain
            ) == rebuilt.ground_truth.experts(domain)

    def test_different_seed_differs(self, tiny_dataset):
        other = build_dataset(DatasetScale.TINY, seed=8)
        a = {r.resource_id: r.text for r in tiny_dataset.merged_graph.resources()}
        b = {r.resource_id: r.text for r in other.merged_graph.resources()}
        assert a != b


class TestRankingDeterminism:
    def test_same_query_same_ranking(self, tiny_dataset):
        finder = ExpertFinder.build(
            tiny_dataset.merged_graph,
            tiny_dataset.candidates_for(None),
            tiny_dataset.analyzer,
            FinderConfig(),
            corpus=tiny_dataset.corpus,
        )
        first = finder.find_experts("famous european football teams")
        second = finder.find_experts("famous european football teams")
        assert [(e.candidate_id, e.score) for e in first] == [
            (e.candidate_id, e.score) for e in second
        ]

    def test_rebuilt_finder_same_ranking(self, tiny_dataset):
        def build():
            return ExpertFinder.build(
                tiny_dataset.merged_graph,
                tiny_dataset.candidates_for(None),
                tiny_dataset.analyzer,
                FinderConfig(),
                corpus=tiny_dataset.corpus,
            )

        a = build().find_experts("why is copper a good conductor")
        b = build().find_experts("why is copper a good conductor")
        assert [(e.candidate_id, e.score) for e in a] == [
            (e.candidate_id, e.score) for e in b
        ]
