"""End-to-end integration tests over the TINY dataset: the full path
from generated platform stores through extraction, analysis, indexing,
matching, and expert ranking."""

from __future__ import annotations

import pytest

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.evaluation.metrics import average_precision
from repro.socialgraph.metamodel import Platform


class TestEndToEnd:
    def test_pipeline_finds_signal(self, tiny_context):
        """The ranked experts must beat a random shuffle on average —
        the system extracts real signal from the generated behaviour."""
        result = tiny_context.runner.run(None, FinderConfig())
        system_map = result.summary().map
        assert system_map > tiny_context.baseline.map

    def test_distance_progression(self, tiny_context):
        maps = {}
        for distance in (0, 1, 2):
            result = tiny_context.runner.run(None, FinderConfig(max_distance=distance))
            maps[distance] = result.summary().map
        assert maps[0] < maps[1] <= maps[2] * 1.2  # d1 and d2 both far above d0
        assert maps[2] > maps[0]

    def test_expert_recovery_for_strong_domain(self, tiny_dataset):
        """For a domain with clear experts, at least one true expert must
        appear in the top 3 for that domain's queries."""
        finder = ExpertFinder.build(
            tiny_dataset.merged_graph,
            tiny_dataset.candidates_for(None),
            tiny_dataset.analyzer,
            FinderConfig(),
            corpus=tiny_dataset.corpus,
        )
        truth = tiny_dataset.ground_truth
        hits = 0
        domain_queries = [q for q in tiny_dataset.queries if q.domain == "sport"]
        for need in domain_queries:
            top = [e.candidate_id for e in finder.find_experts(need, top_k=3)]
            if set(top) & truth.experts("sport"):
                hits += 1
        assert hits >= len(domain_queries) // 2

    def test_per_platform_finders_work(self, tiny_context):
        for platform in Platform:
            result = tiny_context.runner.run(platform, FinderConfig())
            assert 0.0 <= result.summary().map <= 1.0

    def test_queries_answered_by_relevant_people(self, tiny_dataset, tiny_context):
        """A query's AP should (on average) exceed the AP obtained when
        scoring the ranking against a *different* domain's experts."""
        result = tiny_context.runner.run(None, FinderConfig())
        truth = tiny_dataset.ground_truth
        own, cross = [], []
        for outcome in result.outcomes:
            own.append(average_precision(outcome.ranking, outcome.relevant))
            other_domain = "music" if outcome.need.domain != "music" else "sport"
            cross.append(
                average_precision(outcome.ranking, truth.experts(other_domain))
            )
        assert sum(own) > sum(cross)

    def test_crawler_respected_privacy(self, tiny_dataset):
        """No closed external Facebook friend may appear in the graph."""
        store = tiny_dataset.networks.stores[Platform.FACEBOOK]
        graph = tiny_dataset.graphs[Platform.FACEBOOK]
        for profile_id, record in store.accounts.items():
            if not record.privacy.profile_visible:
                assert not graph.has_profile(profile_id)

    def test_non_english_resources_not_indexed(self, tiny_dataset):
        finder = ExpertFinder.build(
            tiny_dataset.merged_graph,
            tiny_dataset.candidates_for(None),
            tiny_dataset.analyzer,
            FinderConfig(),
            corpus=tiny_dataset.corpus,
        )
        total_nodes = len(tiny_dataset.merged_graph)
        assert finder.indexed_resources < total_nodes

    def test_window_restricts_experts(self, tiny_context):
        wide = tiny_context.runner.run(None, FinderConfig(window=None))
        narrow = tiny_context.runner.run(None, FinderConfig(window=5))
        wide_total = sum(len(o.ranking) for o in wide.outcomes)
        narrow_total = sum(len(o.ranking) for o in narrow.outcomes)
        assert narrow_total < wide_total


class TestPaperScaleSmoke:
    @pytest.mark.slow
    def test_small_dataset_builds(self):
        """Marked slow: builds the benchmark-scale dataset once."""
        from repro.synthetic.dataset import DatasetScale, build_dataset

        dataset = build_dataset(DatasetScale.SMALL, seed=7)
        assert len(dataset.people) == 40
        assert dataset.merged_graph.counts()["resources"] > 10000
