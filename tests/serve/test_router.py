"""Router, request/response model, and JSON validator unit tests."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.metrics import GatewayMetrics, RouteMetrics
from repro.serve.router import (
    HttpError,
    Request,
    Response,
    Router,
    opt_number,
    opt_positive_int,
    opt_str,
    opt_unit_float,
    parse_json_object,
    reject_unknown_fields,
    require_str,
    require_str_list,
)


def _request(body: bytes = b"", headers: dict[str, str] | None = None) -> Request:
    return Request(
        method="POST",
        path="/v1/query",
        headers=headers or {},
        body=body,
        peer="127.0.0.1",
    )


class TestHttpError:
    def test_structured_payload(self):
        response = HttpError(400, "invalid_field", "nope").to_response()
        assert response.status == 400
        assert response.payload == {
            "error": {"status": 400, "code": "invalid_field", "message": "nope"}
        }
        assert response.headers == {}

    def test_retry_after_is_integral_ceiling(self):
        response = HttpError(
            429, "rate_limited", "slow down", retry_after=0.2
        ).to_response()
        assert response.headers["Retry-After"] == "1"
        response = HttpError(
            429, "rate_limited", "slow down", retry_after=3.1
        ).to_response()
        assert response.headers["Retry-After"] == "4"


class TestRequestResponse:
    def test_client_key_prefers_header(self):
        assert _request(headers={"x-client-id": "svc-a"}).client_key == "svc-a"
        assert _request().client_key == "127.0.0.1"

    def test_encode_body_is_canonical(self):
        body = Response(200, {"b": 1, "a": 2}).encode_body()
        assert body == b'{"a": 2, "b": 1}\n'


class TestRouter:
    @pytest.fixture
    def router(self):
        async def handler(request: Request) -> Response:
            return Response(200, {})

        router = Router()
        router.add("POST", "/v1/query", handler, limited=True)
        router.add("GET", "/healthz", handler)
        return router

    def test_resolve_exact(self, router):
        route = router.resolve("post", "/v1/query")
        assert (route.method, route.limited) == ("POST", True)

    def test_unknown_path_404(self, router):
        with pytest.raises(HttpError) as exc:
            router.resolve("GET", "/nope")
        assert (exc.value.status, exc.value.code) == (404, "not_found")

    def test_wrong_method_405_lists_allowed(self, router):
        with pytest.raises(HttpError) as exc:
            router.resolve("DELETE", "/v1/query")
        assert exc.value.status == 405
        assert "POST" in exc.value.message

    def test_duplicate_route_rejected(self, router):
        async def handler(request: Request) -> Response:
            return Response(200, {})

        with pytest.raises(ValueError, match="duplicate"):
            router.add("GET", "/healthz", handler)


class TestValidators:
    def test_parse_json_object(self):
        assert parse_json_object(_request(b'{"a": 1}')) == {"a": 1}

    @pytest.mark.parametrize(
        "body,code",
        [
            (b"", "empty_body"),
            (b"{not json", "invalid_json"),
            (b"[1, 2]", "invalid_json"),
            (b'"just a string"', "invalid_json"),
            (b"\xff\xfe", "invalid_json"),
        ],
    )
    def test_parse_json_object_failures(self, body, code):
        with pytest.raises(HttpError) as exc:
            parse_json_object(_request(body))
        assert (exc.value.status, exc.value.code) == (400, code)

    def test_reject_unknown_fields(self):
        reject_unknown_fields({"a": 1}, ("a", "b"))
        with pytest.raises(HttpError) as exc:
            reject_unknown_fields({"a": 1, "topk": 3, "zz": 0}, ("a",))
        assert exc.value.code == "unknown_field"
        assert "topk, zz" in exc.value.message

    @pytest.mark.parametrize("value", [None, "", "   ", 7, ["x"]])
    def test_require_str_rejects(self, value):
        with pytest.raises(HttpError):
            require_str({"need": value}, "need")

    def test_opt_str(self):
        assert opt_str({}, "language") is None
        assert opt_str({"language": "it"}, "language") == "it"
        with pytest.raises(HttpError):
            opt_str({"language": 3}, "language")

    @pytest.mark.parametrize("value", [0, -1, 1.5, True, "3"])
    def test_opt_positive_int_rejects(self, value):
        with pytest.raises(HttpError):
            opt_positive_int({"top_k": value}, "top_k")

    def test_opt_positive_int_accepts(self):
        assert opt_positive_int({}, "top_k") is None
        assert opt_positive_int({"top_k": 4}, "top_k") == 4

    @pytest.mark.parametrize("value", [-0.1, 1.1, True, "0.5"])
    def test_opt_unit_float_rejects(self, value):
        with pytest.raises(HttpError):
            opt_unit_float({"alpha": value}, "alpha")

    def test_opt_unit_float_accepts_ints_as_floats(self):
        assert opt_unit_float({"alpha": 1}, "alpha") == 1.0

    @pytest.mark.parametrize("value", [True, "7", [1]])
    def test_opt_number_rejects(self, value):
        with pytest.raises(HttpError):
            opt_number({"budget": value}, "budget")

    @pytest.mark.parametrize(
        "value", [None, [], ["ok", ""], ["ok", 3], "not a list"]
    )
    def test_require_str_list_rejects(self, value):
        with pytest.raises(HttpError):
            require_str_list({"needs": value}, "needs")


class TestMetrics:
    def test_route_metrics_percentiles(self):
        metrics = RouteMetrics()
        for elapsed in (0.1, 0.2, 0.3, 0.4):
            metrics.record(elapsed, 200)
        metrics.record(0.5, 503)
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 5
        assert snapshot["errors"] == 1
        assert snapshot["p50_latency_s"] == pytest.approx(0.3)
        assert snapshot["p95_latency_s"] == pytest.approx(0.5)

    def test_route_metrics_buffer_halves(self):
        metrics = RouteMetrics()
        for _ in range(5000):
            metrics.record(0.01, 200)
        assert metrics.requests == 5000
        assert len(metrics._samples) < 5000

    def test_gateway_counters(self):
        metrics = GatewayMetrics()
        metrics.begin()
        assert metrics.in_flight == 1
        metrics.end("/v1/query", 200, 0.01)
        metrics.begin()
        metrics.end("/v1/query", 429, 0.0)
        metrics.begin()
        metrics.end("/v1/query", 400, 0.0)
        metrics.begin()
        metrics.end("/v1/query", 503, 0.0)
        snapshot = metrics.snapshot()
        assert snapshot["in_flight"] == 0
        assert snapshot["requests_total"] == 4
        assert snapshot["rate_limited_total"] == 1
        assert snapshot["bad_requests_total"] == 1  # the 400, not the 429
        assert snapshot["responses_by_status"] == {
            "200": 1, "400": 1, "429": 1, "503": 1,
        }
        assert snapshot["routes"]["/v1/query"]["requests"] == 4

    def test_snapshot_is_json_serializable(self):
        metrics = GatewayMetrics()
        metrics.begin()
        metrics.end("/healthz", 200, 0.001)
        json.dumps(metrics.snapshot())


class TestDispatchUnits:
    """dispatch() details that don't need a socket."""

    def test_batch_cost_counts_needs(self):
        from repro.serve.routes import batch_cost

        assert batch_cost(_request(b'{"needs": ["a", "b", "c"]}')) == 3.0
        assert batch_cost(_request(b'{"needs": []}')) == 1.0
        assert batch_cost(_request(b"{broken")) == 1.0
        assert batch_cost(_request(b'{"needs": "not a list"}')) == 1.0

    def test_handler_crash_becomes_500(self, hand_source):
        from repro.serve import GatewayConfig, ServeApp

        app = ServeApp(
            hand_source, config=GatewayConfig(rate_limit=None)
        )

        async def scenario():
            await app.startup()

            async def boom(request: Request) -> Response:
                raise RuntimeError("kaput")

            app.router.add("POST", "/boom", boom)
            response = await app.dispatch(
                Request("POST", "/boom", {}, b"", "127.0.0.1")
            )
            app.shutdown()
            return response

        response = asyncio.run(scenario())
        assert response.status == 500
        assert response.payload["error"]["code"] == "internal_error"
        assert "kaput" in response.payload["error"]["message"]
