"""End-to-end gateway tests over real sockets.

Covers the acceptance bar for the serving layer: responses byte-
identical to in-process ``find_experts`` across every engine × layout
cell, readiness gating, hot reload under concurrent load with zero
failed or torn responses, per-client throttling with ``Retry-After``,
and the strict wire-level bounds of the hand-rolled HTTP parser.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.serve import GatewayConfig, GatewayHarness
from repro.serve.reload import build_service
from tests.serve.conftest import HAND_TEXTS, build_hand_graph


def _raw(harness: GatewayHarness, data: bytes, timeout: float = 10.0) -> bytes:
    """One raw TCP exchange: send *data*, read until the server closes."""
    with socket.create_connection(
        (harness.host, harness.port), timeout=timeout
    ) as sock:
        sock.sendall(data)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


def _triples(experts: list[dict]) -> list[tuple[str, float, int]]:
    return [
        (e["candidate_id"], e["score"], e["supporting_resources"])
        for e in experts
    ]


class TestEquivalence:
    """Gateway responses must be byte-identical (ids and scores) to the
    in-process reference finder for every engine × layout cell."""

    # (engine, shards): monolithic cells plus sharded scatter-gather
    # cells (a sharded finder cannot serve the object engine — its
    # collection is split across shards)
    MATRIX = [
        ("object", None),
        ("columnar", None),
        ("columnar-pruned", None),
        ("columnar", 1),
        ("columnar-pruned", 1),
        ("columnar", 2),
        ("columnar-pruned", 2),
    ]

    @pytest.fixture(scope="class")
    def expected(self, stream_finder_factory, stream_parts):
        _, _, queries = stream_parts
        reference = stream_finder_factory()
        return {
            q: [
                (e.candidate_id, e.score, e.supporting_resources)
                for e in reference.find_experts(q, top_k=5)
            ]
            for q in queries
        }

    @pytest.mark.parametrize("engine,shards", MATRIX)
    def test_query_and_batch_byte_identical(
        self, stream_finder_factory, stream_parts, expected, engine, shards
    ):
        _, _, queries = stream_parts

        def source():
            return build_service(
                stream_finder_factory(shards=shards), engine=engine
            )

        harness = GatewayHarness(
            source, config=GatewayConfig(rate_limit=None), reloadable=False
        )
        with harness:
            for query in queries:
                status, _, body = harness.request(
                    "POST", "/v1/query", {"need": query, "top_k": 5}
                )
                assert status == 200
                assert _triples(body["experts"]) == expected[query]
            # the batch path goes through find_experts_batch (the
            # scatter pool pipelines the misses on sharded layouts)
            status, _, body = harness.request(
                "POST", "/v1/query/batch", {"needs": queries, "top_k": 5}
            )
            assert status == 200
            assert [_triples(r) for r in body["results"]] == [
                expected[q] for q in queries
            ]


class TestReadiness:
    def test_not_ready_until_first_generation_compiles(self, analyzer):
        release = threading.Event()

        def slow_source():
            assert release.wait(30.0), "test released the source too late"
            finder = ExpertFinder.build(
                build_hand_graph(),
                tuple(HAND_TEXTS),
                analyzer,
                FinderConfig(window=None),
            )
            return build_service(finder)

        harness = GatewayHarness(
            slow_source, config=GatewayConfig(rate_limit=None)
        )
        harness.start(wait_ready=False)
        try:
            status, _, _ = harness.request("GET", "/healthz")
            assert status == 200  # alive even while loading
            status, _, body = harness.request("GET", "/readyz")
            assert (status, body) == (503, {"ready": False})
            status, _, body = harness.request(
                "POST", "/v1/query", {"need": "swimming"}
            )
            assert status == 503
            assert body["error"]["code"] == "not_ready"
            status, _, body = harness.request("GET", "/v1/metrics")
            assert body["ready"] is False
            assert body["generation"] == 0
            assert body["service"] is None

            release.set()
            harness.wait_ready()
            status, _, body = harness.request("GET", "/readyz")
            assert (status, body["ready"]) == (200, True)
            status, _, body = harness.request(
                "POST", "/v1/query", {"need": "swimming"}
            )
            assert status == 200
        finally:
            release.set()
            harness.stop()


class TestRateLimiting:
    def test_429_retry_after_and_metrics(self, hand_source):
        harness = GatewayHarness(
            hand_source, config=GatewayConfig(rate_limit=0.01, burst=2.0)
        )
        with harness:
            outcomes = [
                harness.request(
                    "POST",
                    "/v1/query",
                    {"need": "swimming"},
                    headers={"x-client-id": "hammer"},
                )
                for _ in range(5)
            ]
            admitted = [o for o in outcomes if o[0] == 200]
            rejected = [o for o in outcomes if o[0] == 429]
            assert (len(admitted), len(rejected)) == (2, 3)
            for _, headers, body in rejected:
                assert int(headers["retry-after"]) >= 1
                assert body["error"]["code"] == "rate_limited"
            # a different client owns a fresh bucket
            status, _, _ = harness.request(
                "POST",
                "/v1/query",
                {"need": "swimming"},
                headers={"x-client-id": "polite"},
            )
            assert status == 200
            # probes and metrics are never throttled — and the metrics
            # endpoint reports the rejections
            for _ in range(5):
                status, _, body = harness.request(
                    "GET", "/v1/metrics", headers={"x-client-id": "hammer"}
                )
                assert status == 200
            assert body["gateway"]["rate_limited_total"] == 3

    def test_batch_spends_one_token_per_need(self, hand_source):
        harness = GatewayHarness(
            hand_source, config=GatewayConfig(rate_limit=0.01, burst=3.0)
        )
        with harness:
            status, _, _ = harness.request(
                "POST",
                "/v1/query/batch",
                {"needs": ["swimming", "guitar", "pasta"]},
                headers={"x-client-id": "batcher"},
            )
            assert status == 200  # exactly the burst
            status, _, _ = harness.request(
                "POST",
                "/v1/query",
                {"need": "swimming"},
                headers={"x-client-id": "batcher"},
            )
            assert status == 429  # the batch drained the bucket


class TestHotReload:
    def test_reload_under_load_zero_failures(self, hand_source):
        harness = GatewayHarness(
            hand_source, config=GatewayConfig(rate_limit=None)
        )
        with harness:
            status, _, baseline = harness.request(
                "POST", "/v1/query", {"need": "freestyle swimming"}
            )
            assert status == 200
            expected = baseline["experts"]
            assert expected  # alice and carol rank

            failures: list[tuple[int, object]] = []
            done = threading.Event()

            def hammer() -> None:
                conn = harness.connection()
                try:
                    while not done.is_set():
                        status, _, body = harness.request(
                            "POST",
                            "/v1/query",
                            {"need": "freestyle swimming"},
                            conn=conn,
                        )
                        # identical rankings whichever generation served
                        # it — a torn or failed response records here
                        if status != 200 or body["experts"] != expected:
                            failures.append((status, body))
                finally:
                    conn.close()

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            generations = []
            try:
                for _ in range(3):
                    status, _, body = harness.request(
                        "POST", "/admin/reload"
                    )
                    assert status == 200
                    generations.append(body["generation"])
                    time.sleep(0.05)
            finally:
                done.set()
                for thread in threads:
                    thread.join(30.0)
            assert failures == []
            assert generations == [2, 3, 4]
            status, _, body = harness.request("GET", "/v1/metrics")
            assert body["generation"] == 4
            assert body["gateway"]["reloads"] == 3
            assert body["gateway"]["reload_failures"] == 0

    def test_failed_reload_keeps_old_generation(self, analyzer):
        calls = {"count": 0}

        def flaky_source():
            calls["count"] += 1
            if calls["count"] > 1:
                raise RuntimeError("disk on fire")
            finder = ExpertFinder.build(
                build_hand_graph(),
                tuple(HAND_TEXTS),
                analyzer,
                FinderConfig(window=None),
            )
            return build_service(finder)

        harness = GatewayHarness(
            flaky_source, config=GatewayConfig(rate_limit=None)
        )
        with harness:
            status, _, body = harness.request("POST", "/admin/reload")
            assert status == 500
            assert body["error"]["code"] == "reload_failed"
            assert "disk on fire" in body["error"]["message"]
            # generation 1 keeps serving, untouched
            status, _, body = harness.request(
                "POST", "/v1/query", {"need": "freestyle swimming"}
            )
            assert (status, body["generation"]) == (200, 1)
            status, _, body = harness.request("GET", "/v1/metrics")
            assert body["gateway"]["reload_failures"] == 1
            assert body["gateway"]["reloads"] == 0

    def test_not_reloadable_gateway_409s(self, hand_source):
        harness = GatewayHarness(
            hand_source,
            config=GatewayConfig(rate_limit=None),
            reloadable=False,
        )
        with harness:
            status, _, body = harness.request("POST", "/admin/reload")
            assert status == 409
            assert body["error"]["code"] == "not_reloadable"


class TestWireProtocol:
    def test_malformed_request_line(self, gateway):
        raw = _raw(gateway, b"GARBAGE\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 400")
        assert b"bad_request_line" in raw

    def test_unsupported_http_version(self, gateway):
        raw = _raw(gateway, b"GET /healthz SPDY/3\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 400")

    def test_chunked_bodies_rejected(self, gateway):
        raw = _raw(
            gateway,
            b"POST /v1/query HTTP/1.1\r\n"
            b"transfer-encoding: chunked\r\n\r\n",
        )
        assert raw.startswith(b"HTTP/1.1 501")
        assert b"chunked_unsupported" in raw

    def test_bad_content_length(self, gateway):
        raw = _raw(
            gateway,
            b"POST /v1/query HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
        )
        assert raw.startswith(b"HTTP/1.1 400")

    def test_body_too_large(self, hand_source):
        harness = GatewayHarness(
            hand_source,
            config=GatewayConfig(rate_limit=None, max_body_bytes=64),
        )
        with harness:
            status, _, body = harness.request(
                "POST", "/v1/query", {"need": "x" * 200}
            )
            assert status == 413
            assert body["error"]["code"] == "body_too_large"

    def test_headers_too_large(self, hand_source):
        harness = GatewayHarness(
            hand_source,
            config=GatewayConfig(rate_limit=None, max_header_bytes=256),
        )
        with harness:
            raw = _raw(
                harness,
                b"GET /healthz HTTP/1.1\r\n"
                b"x-padding: " + b"p" * 1000 + b"\r\n\r\n",
            )
            assert raw.startswith(b"HTTP/1.1 431")

    def test_keep_alive_serves_sequential_requests(self, gateway):
        conn = gateway.connection()
        try:
            first, _, _ = gateway.request("GET", "/healthz", conn=conn)
            second, _, _ = gateway.request(
                "POST", "/v1/query", {"need": "swimming"}, conn=conn
            )
            assert (first, second) == (200, 200)
        finally:
            conn.close()

    def test_query_string_is_ignored_for_routing(self, gateway):
        status, _, _ = gateway.request("GET", "/healthz?probe=1")
        assert status == 200


class TestEndpointErrors:
    def test_unknown_path_404(self, gateway):
        status, _, body = gateway.request("GET", "/v2/query")
        assert (status, body["error"]["code"]) == (404, "not_found")

    def test_wrong_method_405(self, gateway):
        status, _, body = gateway.request("GET", "/v1/query")
        assert (status, body["error"]["code"]) == (405, "method_not_allowed")

    @pytest.mark.parametrize(
        "payload,code",
        [
            ({}, "invalid_field"),  # missing need
            ({"need": ""}, "invalid_field"),
            ({"need": "x", "topk": 3}, "unknown_field"),
            ({"need": "x", "top_k": 0}, "invalid_field"),
            ({"need": "x", "alpha": 1.5}, "invalid_field"),
            ({"need": "x", "window": 0}, "invalid_field"),
            ({"need": "x", "window": 1.5}, "invalid_field"),
            ({"need": "x", "window": True}, "invalid_field"),
        ],
    )
    def test_query_validation(self, gateway, payload, code):
        status, _, body = gateway.request("POST", "/v1/query", payload)
        assert (status, body["error"]["code"]) == (400, code)

    def test_query_window_semantics_on_the_wire(self, gateway):
        # null window (all evidence) and a fractional window are both
        # valid and may rank differently — they must not 400
        for window in (None, 0.5, 1):
            status, _, body = gateway.request(
                "POST", "/v1/query", {"need": "swimming", "window": window}
            )
            assert status == 200

    def test_batch_size_bound(self, hand_source):
        harness = GatewayHarness(
            hand_source,
            config=GatewayConfig(rate_limit=None, max_batch_needs=2),
        )
        with harness:
            status, _, body = harness.request(
                "POST", "/v1/query/batch", {"needs": ["a", "b", "c"]}
            )
            assert status == 400
            assert "limited to 2" in body["error"]["message"]

    @pytest.mark.parametrize(
        "supporters",
        [[], [["alice"]], [["alice", -1]], [["alice", True]], [[3, 1]], "x"],
    )
    def test_observe_supporter_validation(self, gateway, supporters):
        status, _, body = gateway.request(
            "POST",
            "/v1/observe",
            {"node_id": "n1", "text": "some text", "supporters": supporters},
        )
        assert status == 400

    def test_observe_indexes_and_affects_queries(self, gateway):
        status, _, before = gateway.request(
            "POST", "/v1/query", {"need": "theremin concert"}
        )
        assert (status, before["experts"]) == (200, [])
        status, _, body = gateway.request(
            "POST",
            "/v1/observe",
            {
                "node_id": "s:new:1",
                "text": "an amazing theremin concert last night",
                "supporters": [["bob", 1]],
            },
        )
        assert (status, body["indexed"]) == (200, True)
        status, _, after = gateway.request(
            "POST", "/v1/query", {"need": "theremin concert"}
        )
        assert [e["candidate_id"] for e in after["experts"]] == ["bob"]

    def test_crowd_route_unknown_strategy(self, gateway):
        status, _, body = gateway.request(
            "POST",
            "/v1/crowd/route",
            {"need": "swimming", "strategy": "telepathy"},
        )
        assert status == 400
        assert "telepathy" in body["error"]["message"]

    def test_crowd_route_no_experts_404(self, gateway):
        status, _, body = gateway.request(
            "POST", "/v1/crowd/route", {"need": "xylophone apocalypse"}
        )
        assert (status, body["error"]["code"]) == (404, "no_experts")

    def test_crowd_jury_rejects_bad_budget(self, gateway):
        status, _, body = gateway.request(
            "POST", "/v1/crowd/jury", {"need": "swimming", "budget": -1}
        )
        assert (status, body["error"]["code"]) == (400, "invalid_field")

    def test_crowd_jury_selects_members(self, gateway):
        status, _, body = gateway.request(
            "POST", "/v1/crowd/jury", {"need": "swimming", "max_size": 3}
        )
        assert status == 200
        assert body["members"]
        assert 0.0 <= body["jury_error_rate"] <= 1.0

    def test_crowd_team_bad_algorithm(self, gateway):
        status, _, body = gateway.request(
            "POST",
            "/v1/crowd/team",
            {"skills": ["swimming"], "algorithm": "vibes"},
        )
        assert status == 400

    def test_crowd_team_uncoverable_skill_404(self, gateway):
        status, _, body = gateway.request(
            "POST",
            "/v1/crowd/team",
            {"skills": ["swimming", "quantum basket weaving"]},
        )
        assert (status, body["error"]["code"]) == (404, "no_experts")

    def test_crowd_team_covers_both_skills(self, gateway):
        status, _, body = gateway.request(
            "POST",
            "/v1/crowd/team",
            {"skills": ["swimming", "rock music"], "algorithm": "rarest_first"},
        )
        assert status == 200
        assert set(body["required_skills"]) == {"swimming", "rock music"}
        assert body["members"]


class TestMetricsEndpoint:
    def test_shape_and_counters(self, gateway):
        for _ in range(3):
            status, _, _ = gateway.request(
                "POST", "/v1/query", {"need": "swimming"}
            )
            assert status == 200
        gateway.request("POST", "/v1/query", {"bad": "payload"})
        status, _, body = gateway.request("GET", "/v1/metrics")
        assert status == 200
        assert body["ready"] is True
        assert body["generation"] == 1
        assert body["snapshot_generation"] is None  # built in process
        service = body["service"]
        assert service["queries"] == 3
        assert service["cache_hits"] == 2
        assert service["hit_rate"] == pytest.approx(2 / 3)
        gw = body["gateway"]
        assert gw["requests_total"] == 5
        assert gw["bad_requests_total"] == 1
        assert gw["in_flight"] == 1  # this very request
        assert gw["responses_by_status"]["200"] == 3
        route = gw["routes"]["/v1/query"]
        assert route["requests"] == 4
        assert route["p95_latency_s"] >= route["p50_latency_s"] >= 0.0
