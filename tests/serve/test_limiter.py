"""Token-bucket limiter unit tests (driven by a fake clock)."""

from __future__ import annotations

import pytest

from repro.serve.limiter import TokenBucketLimiter


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestAdmission:
    def test_burst_admitted_then_rejected(self, clock):
        limiter = TokenBucketLimiter(1.0, 3.0, clock=clock)
        assert [limiter.try_acquire("c") for _ in range(3)] == [0.0, 0.0, 0.0]
        retry = limiter.try_acquire("c")
        assert retry == pytest.approx(1.0)  # one token accrues in 1 s

    def test_refill_readmits(self, clock):
        limiter = TokenBucketLimiter(2.0, 1.0, clock=clock)
        assert limiter.try_acquire("c") == 0.0
        assert limiter.try_acquire("c") > 0.0
        clock.advance(0.5)  # 2 tokens/s × 0.5 s = 1 token
        assert limiter.try_acquire("c") == 0.0

    def test_refill_caps_at_burst(self, clock):
        limiter = TokenBucketLimiter(10.0, 2.0, clock=clock)
        clock.advance(1000.0)
        assert limiter.try_acquire("c", 2.0) == 0.0  # not 10 002 tokens
        assert limiter.try_acquire("c") > 0.0

    def test_clients_are_independent(self, clock):
        limiter = TokenBucketLimiter(1.0, 1.0, clock=clock)
        assert limiter.try_acquire("a") == 0.0
        assert limiter.try_acquire("a") > 0.0
        assert limiter.try_acquire("b") == 0.0

    def test_batch_cost_spends_many_tokens(self, clock):
        limiter = TokenBucketLimiter(1.0, 10.0, clock=clock)
        assert limiter.try_acquire("c", cost=8.0) == 0.0
        assert limiter.try_acquire("c", cost=8.0) > 0.0  # only 2 left
        assert limiter.try_acquire("c", cost=2.0) == 0.0

    def test_retry_after_reflects_partial_tokens(self, clock):
        limiter = TokenBucketLimiter(2.0, 1.0, clock=clock)
        limiter.try_acquire("c")
        clock.advance(0.25)  # bucket holds 0.5 token
        retry = limiter.try_acquire("c")
        assert retry == pytest.approx(0.25)  # 0.5 missing / 2 per second

    def test_rejection_does_not_consume_tokens(self, clock):
        limiter = TokenBucketLimiter(1.0, 1.0, clock=clock)
        limiter.try_acquire("c")
        for _ in range(5):
            limiter.try_acquire("c")  # rejected, must not dig a debt
        clock.advance(1.0)
        assert limiter.try_acquire("c") == 0.0


class TestEviction:
    def test_full_buckets_evicted_first(self, clock):
        limiter = TokenBucketLimiter(1.0, 2.0, clock=clock, max_clients=2)
        limiter.try_acquire("drained")
        limiter.try_acquire("drained")  # now empty: carries state
        clock.advance(0.1)
        limiter.try_acquire("idle")  # 1 spent, refills quickly
        clock.advance(10.0)  # "idle" is full again; "drained" refilled too
        limiter.try_acquire("fresh")  # overflows the table
        assert limiter.clients == 2
        # both old buckets were full → pass 1 dropped the LRU one
        assert limiter.try_acquire("fresh") == 0.0

    def test_strict_lru_when_nothing_is_full(self, clock):
        limiter = TokenBucketLimiter(0.001, 1.0, clock=clock, max_clients=2)
        limiter.try_acquire("a")
        limiter.try_acquire("b")
        limiter.try_acquire("c")  # nobody refilled: LRU "a" is dropped
        assert limiter.clients == 2
        # "a" comes back as a fresh (full) bucket
        assert limiter.try_acquire("a") == 0.0


class TestValidation:
    @pytest.mark.parametrize("rate", [0.0, -1.0])
    def test_rate_must_be_positive(self, rate):
        with pytest.raises(ValueError, match="rate"):
            TokenBucketLimiter(rate, 1.0)

    def test_burst_must_admit_one(self):
        with pytest.raises(ValueError, match="burst"):
            TokenBucketLimiter(1.0, 0.5)

    def test_max_clients_positive(self):
        with pytest.raises(ValueError, match="max_clients"):
            TokenBucketLimiter(1.0, 1.0, max_clients=0)

    @pytest.mark.parametrize("cost", [0.0, -2.0])
    def test_cost_must_be_positive(self, cost):
        limiter = TokenBucketLimiter(1.0, 1.0)
        with pytest.raises(ValueError, match="cost"):
            limiter.try_acquire("c", cost=cost)
