"""Fixtures for the serving-gateway tests.

Two finder shapes back the suite:

* a tiny hand-built graph (three people, six resources) for endpoint
  behaviour tests — rebuilds in milliseconds, so reload tests can
  construct fresh generations freely;
* deterministic synthetic streams (six candidates, sixty resources) for
  the engine × layout equivalence matrix, where byte-identical scores
  against an in-process twin finder are the whole point.
"""

from __future__ import annotations

import pytest

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.core.service import ExpertSearchService
from repro.serve import GatewayConfig, GatewayHarness
from repro.serve.reload import build_service
from repro.socialgraph.graph import SocialGraph
from repro.socialgraph.metamodel import (
    Platform,
    RelationKind,
    Resource,
    UserProfile,
)

HAND_TEXTS = {
    "alice": [
        "freestyle swimming training at the pool",
        "swimming competition victory",
    ],
    "bob": ["guitar chords and a new rock song", "music festival lineup"],
    "carol": [
        "swimming pool maintenance",
        "freestyle stroke technique tips",
    ],
}


def build_hand_graph() -> SocialGraph:
    graph = SocialGraph(Platform.TWITTER)
    for pid, texts in HAND_TEXTS.items():
        graph.add_profile(
            UserProfile(profile_id=pid, platform=Platform.TWITTER, display_name=pid)
        )
        for i, text in enumerate(texts):
            rid = f"{pid}-r{i}"
            graph.add_resource(
                Resource(
                    resource_id=rid,
                    platform=Platform.TWITTER,
                    text=text,
                    language="en",
                )
            )
            graph.link_resource(pid, rid, RelationKind.CREATES)
    return graph


@pytest.fixture
def hand_source(analyzer):
    """A source callable producing a fresh service per generation."""

    def source() -> ExpertSearchService:
        finder = ExpertFinder.build(
            build_hand_graph(),
            tuple(HAND_TEXTS),
            analyzer,
            FinderConfig(window=None),
        )
        return build_service(finder, engine="columnar")

    return source


@pytest.fixture
def gateway(hand_source):
    """A running unlimited gateway over the hand-built graph."""
    harness = GatewayHarness(
        hand_source, config=GatewayConfig(rate_limit=None)
    )
    with harness:
        yield harness


@pytest.fixture(scope="session")
def stream_parts(analyzer):
    """Candidates/resources/queries for the equivalence matrix."""
    from repro.synthetic.stream import (
        stream_candidates,
        stream_queries,
        stream_resources,
    )

    candidates = stream_candidates(6)
    resources = list(stream_resources(candidates, 60, seed=31))
    queries = list(stream_queries(6, seed=31))
    return candidates, resources, queries


@pytest.fixture(scope="session")
def stream_finder_factory(analyzer, stream_parts):
    """Build identical finders on demand (deterministic streams)."""
    candidates, resources, _ = stream_parts

    def build(*, shards: int | None = None) -> ExpertFinder:
        return ExpertFinder.from_stream(
            candidates,
            iter(resources),
            analyzer,
            FinderConfig(window=None),
            shards=shards,
        )

    return build
